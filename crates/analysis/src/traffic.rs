//! Traffic load sweeps: latency-vs-injection-rate curves per routing
//! function and fault density.
//!
//! This is the macro-level benchmark of the workspace: where the Fig. 5
//! harness measures per-packet routing quality, the load sweep measures
//! what those routing decisions cost a *network under contention* —
//! mean/p95 latency, accepted throughput and saturation onset, per
//! router, per fault density, per injection rate.

use crossbeam::channel;
use meshpath_mesh::{FaultInjection, FaultSet, Mesh};
use meshpath_obs::Phase;
use meshpath_route::NetView;
use meshpath_traffic::{
    DrainStallObserver, LatencyHistogram, ObsReport, PathTable, RoutingKind, SimConfig, TraceEntry,
    TrafficSim, TrafficStats, WindowObserver, WorkloadOutcome,
};
use meshpath_workload::WorkloadSpec;

use crate::jsonl::{document_with, JsonObject};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::time::Instant;

use crate::sweep::derive_seed;
use crate::table::{f1, f3, Table};

/// Parameters of one load sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadSweepConfig {
    /// Mesh side length.
    pub mesh: u32,
    /// Fault counts to evaluate (each gets one seeded configuration).
    pub fault_counts: Vec<usize>,
    /// Injection rates (packets/node/cycle) to evaluate.
    pub rates: Vec<f64>,
    /// Routing functions to drive.
    pub routers: Vec<RoutingKind>,
    /// Simulator template; `rate` and `seed` are overridden per point.
    /// Its [`threads`](SimConfig::threads) knob shards each *single*
    /// simulation across worker threads (bit-identical results; the
    /// right tool for a few large-mesh points) — distinct from the
    /// sweep-level [`threads`](LoadSweepConfig::threads) pool below,
    /// which parallelizes across *points*. Multiplying the two
    /// oversubscribes the machine; prefer the pool for many small
    /// points and `sim.threads` for few large ones.
    pub sim: SimConfig,
    /// Base seed for fault placement and traffic streams.
    pub seed: u64,
    /// Sweep-level worker threads, one simulation per task
    /// (0 = all available cores).
    pub threads: usize,
    /// Fault placement model.
    pub injection: FaultInjection,
    /// Rate-ladder early exit: once a `(router, faults)` ladder
    /// saturates or deadlocks at some rate, every *higher* rate is
    /// marked `saturated` without simulating (offered load only grows,
    /// so the verdict is monotone), and a saturated run's drain is cut
    /// short once it has visibly wedged (see
    /// [`DrainStallObserver`]). Post-saturation points then carry the
    /// verdict but not full statistics (`simulated = false`, or a
    /// truncated drain) — disable when the exact shape of the
    /// post-saturation curve matters, as `examples/traffic_saturation`
    /// does.
    pub early_exit: bool,
    /// Scheduled workload replacing the synthetic injection processes:
    /// trace replay, a flow DAG, or barrier-synchronised collective
    /// rounds. Every grid point runs the same spec (rebuilt per point
    /// against that point's fault configuration), and workload points
    /// carry `flow_p50`/`flow_p99`/`phase_cycles` in the `--json` rows.
    /// `rate` is ignored by workload runs, so sweep a single rate.
    #[serde(skip)]
    pub workload: Option<WorkloadSpec>,
}

impl Default for LoadSweepConfig {
    fn default() -> Self {
        LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![0, 8, 25],
            rates: vec![0.002, 0.005, 0.01, 0.02, 0.05],
            routers: RoutingKind::ALL.to_vec(),
            sim: SimConfig::default(),
            seed: 0x6e6f_6321, // "noc!"
            threads: 0,
            injection: FaultInjection::Uniform,
            early_exit: true,
            workload: None,
        }
    }
}

impl LoadSweepConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        LoadSweepConfig {
            mesh: 8,
            fault_counts: vec![0, 3],
            rates: vec![0.005, 0.02],
            routers: vec![RoutingKind::Xy, RoutingKind::Rb2],
            sim: SimConfig::smoke(),
            ..Default::default()
        }
    }
}

/// One measured `(router, fault count, rate)` grid point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadPoint {
    /// The routing function driven.
    pub router: RoutingKind,
    /// Faults injected into the configuration.
    pub faults: usize,
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Full simulator statistics.
    pub stats: TrafficStats,
    /// Whether this point was actually simulated. `false` for
    /// rate-ladder early exits: a lower rate on the same `(router,
    /// faults)` ladder already saturated or deadlocked, so this point
    /// carries a synthesized `saturated` verdict and zeroed counters.
    pub simulated: bool,
    /// Wall-clock spent simulating this point, in milliseconds (0 for
    /// early-exited points) — the per-point perf trajectory recorded
    /// in `BENCH_traffic.json`.
    pub sim_wall_ms: f64,
    /// The merged observability report, present when the sweep ran
    /// with [`SimConfig::obs`] above `Off` and the point was actually
    /// simulated. Summarized into the `obs_report` section of
    /// [`LoadSweepResult::to_json`].
    #[serde(skip)]
    pub obs: Option<ObsReport>,
    /// The workload outcome (flow completions, phase timings, abort
    /// ledger), present when the sweep ran a
    /// [`workload`](LoadSweepConfig::workload) and the point was
    /// simulated.
    #[serde(skip)]
    pub workload: Option<WorkloadOutcome>,
    /// The recorded packet trace, present when
    /// [`SimConfig::record_trace`] was set and the point was simulated
    /// — the payload `traffic_sweep --record-trace` writes out through
    /// [`crate::workload_io`].
    #[serde(skip)]
    pub trace: Option<Vec<TraceEntry>>,
}

impl LoadPoint {
    /// Simulated flit-hops per wall second, in millions (0 when not
    /// simulated) — the simulator-throughput figure of the BENCH
    /// trajectory.
    pub fn mflits_per_sec(&self) -> f64 {
        if self.sim_wall_ms <= 0.0 {
            0.0
        } else {
            self.stats.flits_moved as f64 / (self.sim_wall_ms * 1e-3) / 1e6
        }
    }
}

/// The full sweep outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadSweepResult {
    /// The configuration that produced this result.
    pub config: LoadSweepConfig,
    /// Grid points in `(fault, rate, router)` lexicographic order.
    pub points: Vec<LoadPoint>,
}

/// An O(1) grid view over a [`LoadSweepResult`], built once per table
/// render (the fix for the old O(points²) rendering: one linear `find`
/// per cell). Points are produced in `(fault, rate, router)`
/// lexicographic order, so the index is pure arithmetic over the
/// config axes; each lookup verifies the identity of the indexed point
/// and falls back to a linear scan for hand-assembled results whose
/// `points` ordering differs.
struct GridIndex<'a> {
    result: &'a LoadSweepResult,
    n_rates: usize,
    n_routers: usize,
}

impl<'a> GridIndex<'a> {
    fn new(result: &'a LoadSweepResult) -> Self {
        GridIndex {
            result,
            n_rates: result.config.rates.len(),
            n_routers: result.config.routers.len(),
        }
    }

    /// The point at grid position `(fault index, rate index, router
    /// index)`, if present.
    fn at(&self, fi: usize, ri: usize, ki: usize) -> Option<&'a LoadPoint> {
        let cfg = &self.result.config;
        let (&faults, &rate, &router) =
            (cfg.fault_counts.get(fi)?, cfg.rates.get(ri)?, cfg.routers.get(ki)?);
        let idx = (fi * self.n_rates + ri) * self.n_routers + ki;
        match self.result.points.get(idx) {
            Some(p) if p.router == router && p.faults == faults && rate_close(p.rate, rate) => {
                Some(p)
            }
            _ => self
                .result
                .points
                .iter()
                .find(|p| p.router == router && p.faults == faults && rate_close(p.rate, rate)),
        }
    }
}

/// Rates match with a small relative tolerance so programmatically
/// constructed rates (e.g. `3.0 * 0.01`) resolve to the grid point
/// they produced despite f64 rounding.
fn rate_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

impl LoadSweepResult {
    /// The point for `(router, faults, rate)`, if it was swept (O(1)
    /// position lookup over the config axes plus an arithmetic grid
    /// index; see `GridIndex`).
    pub fn point(&self, router: RoutingKind, faults: usize, rate: f64) -> Option<&LoadPoint> {
        let cfg = &self.config;
        let pos = (
            cfg.fault_counts.iter().position(|&f| f == faults),
            cfg.rates.iter().position(|&r| rate_close(r, rate)),
            cfg.routers.iter().position(|&k| k == router),
        );
        match pos {
            (Some(fi), Some(ri), Some(ki)) => GridIndex::new(self).at(fi, ri, ki),
            // Key off the config axes: a hand-assembled result may
            // hold points the axes don't name — keep the original
            // exhaustive search for those.
            _ => self
                .points
                .iter()
                .find(|p| p.router == router && p.faults == faults && rate_close(p.rate, rate)),
        }
    }

    /// One latency table per fault density: rows = injection rates,
    /// columns = routers (mean latency in cycles, `sat`/`dead` markers
    /// past the saturation point).
    pub fn latency_tables(&self) -> Vec<Table> {
        let grid = GridIndex::new(self);
        self.config
            .fault_counts
            .iter()
            .enumerate()
            .map(|(fi, &fc)| {
                let mut headers = vec!["rate".to_string()];
                headers.extend(self.config.routers.iter().map(|r| r.name().to_string()));
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let mut t = Table::new(
                    format!(
                        "mean latency (cycles) vs injection rate — {}x{} mesh, {} faults",
                        self.config.mesh, self.config.mesh, fc
                    ),
                    &header_refs,
                );
                for (ri, &rate) in self.config.rates.iter().enumerate() {
                    let mut row = vec![f3(rate)];
                    for ki in 0..self.config.routers.len() {
                        row.push(match grid.at(fi, ri, ki) {
                            Some(p) if p.stats.deadlocked => "dead".to_string(),
                            Some(p) if p.stats.saturated => "sat".to_string(),
                            Some(p) => f1(p.stats.mean_latency()),
                            None => "-".to_string(),
                        });
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }

    /// Serializes the sweep as a JSON document: a `config` summary plus
    /// one flat `rows` object per grid point, suitable for recording
    /// `BENCH_*.json` trajectories across commits. Emitted through
    /// [`crate::jsonl`] (the single hand-rolled JSON path; see its
    /// module docs on the planned serde swap-over).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut config = JsonObject::new();
        config
            .field("mesh", c.mesh)
            .field("seed", c.seed)
            .string("pattern", c.sim.pattern.name())
            .string("injection", c.sim.injection.name())
            .string("length", c.sim.length.name())
            .field("sim_threads", c.sim.threads)
            .field("tile_cols", c.sim.tile_cols)
            .field("lease", c.sim.lease)
            .field("vcs", c.sim.vcs)
            .field("escape_vcs", c.sim.escape_vcs)
            .field("vc_depth", c.sim.vc_depth)
            .field("packet_len", c.sim.packet_len)
            .field("warmup", c.sim.warmup)
            .field("measure", c.sim.measure)
            .field("drain", c.sim.drain)
            .field("churn_events", c.sim.fault_churn.len())
            .string("obs", c.sim.obs.name());
        if let Some(spec) = &c.workload {
            config.string("workload", spec.name());
        }
        let rows: Vec<JsonObject> = self
            .points
            .iter()
            .map(|p| {
                let st = &p.stats;
                let mut row = JsonObject::new();
                row.string("router", p.router.name())
                    .field("faults", p.faults)
                    .field("rate", p.rate)
                    .float("mean_latency", st.mean_latency(), 3)
                    .field("p50_latency", st.p50_latency())
                    .field("p95_latency", st.p95_latency())
                    .field("p99_latency", st.p99_latency())
                    .field("max_latency", st.latency.max())
                    .float("accepted_flits_per_node_cycle", st.accepted_flits_per_node_cycle(), 6)
                    .float("delivered_pct", st.delivered_pct(), 3)
                    .field("generated", st.generated)
                    .field("measured_generated", st.measured_generated)
                    .field("measured_delivered", st.measured_delivered)
                    .field("unroutable", st.unroutable)
                    .field("ttl_dropped", st.ttl_dropped)
                    .field("escape_packets", st.escape_packets)
                    .field("cycles", st.cycles)
                    .field("saturated", st.saturated)
                    .field("deadlocked", st.deadlocked)
                    .field("simulated", p.simulated)
                    .field("flits_moved", st.flits_moved)
                    .field("epochs", st.epoch_delivered.len().max(1))
                    .array_u64("epoch_delivered", &st.epoch_delivered)
                    .field("churn_dropped", st.churn_dropped)
                    .field("churn_killed", st.churn_killed)
                    .field("churn_rejected", st.churn_rejected)
                    .float("sim_wall_ms", p.sim_wall_ms, 3)
                    .float("mflits_per_sec", p.mflits_per_sec(), 3);
                if let Some(wl) = &p.workload {
                    row.field("flows_delivered", wl.flows_delivered)
                        .field("flows_aborted", wl.flows_aborted)
                        .field("flow_p50", wl.flow_p50())
                        .field("flow_p99", wl.flow_p99())
                        .field("flow_makespan", wl.makespan)
                        .array_u64("phase_cycles", &wl.phase_cycles());
                }
                row
            })
            .collect();
        let obs_rows = self.obs_rows();
        if obs_rows.is_empty() {
            document_with(&config, &rows, &[])
        } else {
            document_with(&config, &rows, &[("obs_report", &obs_rows)])
        }
    }

    /// One flat summary object per point that carries an
    /// [`ObsReport`] — the `obs_report` section of [`to_json`]. The
    /// full report (heatmaps, event stream, post-mortem) stays in
    /// memory; JSON gets the numeric digest only, because the
    /// hand-rolled emitter is charset-restricted (see [`crate::jsonl`]).
    ///
    /// [`to_json`]: LoadSweepResult::to_json
    pub fn obs_rows(&self) -> Vec<JsonObject> {
        self.points
            .iter()
            .filter_map(|p| {
                let r = p.obs.as_ref()?;
                let phase_ns =
                    |ph: Phase| -> u64 { r.shards.iter().map(|s| s.phases.get(ph)).sum() };
                let mut o = JsonObject::new();
                o.string("router", p.router.name())
                    .field("faults", p.faults)
                    .field("rate", p.rate)
                    .string("level", r.level.name())
                    .string("stop", r.stop.name())
                    .field("stopped_at", r.stopped_at)
                    .field("injected", r.injected)
                    .field("delivered", r.delivered)
                    .field("dropped", r.dropped)
                    .field("shards", r.shards.len())
                    .field("link_flits_total", r.link_flits.iter().sum::<u64>())
                    .field("link_flits_max", r.link_flits.iter().copied().max().unwrap_or(0))
                    .field("escape_entries", r.escape_entries.iter().sum::<u64>())
                    .field("stall_events", r.stall_cycles.count())
                    .field("stall_p95_cycles", r.stall_cycles.percentile(0.95))
                    .field("stall_max_cycles", r.stall_cycles.max())
                    .field("occupancy_p95", r.vc_occupancy.percentile(0.95))
                    .field(
                        "boundary_msgs",
                        r.shards
                            .iter()
                            .map(|s| s.boundary_to_prev + s.boundary_to_next)
                            .sum::<u64>(),
                    )
                    // Coordinator barriers summed over shards; with the
                    // free-running lease transport this is `cycles *
                    // shards / realized lease factor`, the figure the
                    // 256x256 ladder watches to confirm the lease
                    // actually amortizes the round trip.
                    .field("barriers", r.shards.iter().map(|s| s.barriers).sum::<u64>())
                    .field("plan_ns", phase_ns(Phase::Plan))
                    .field("boundary_ns", phase_ns(Phase::Boundary))
                    .field("commit_ns", phase_ns(Phase::Commit))
                    .field("events_seen", r.shards.iter().map(|s| s.events_seen).sum::<u64>())
                    .field("recent_events", r.recent_events.len())
                    .field("postmortem", r.postmortem.is_some());
                Some(o)
            })
            .collect()
    }

    /// Accepted-throughput table (flits/node/cycle) per fault density.
    pub fn throughput_tables(&self) -> Vec<Table> {
        let grid = GridIndex::new(self);
        self.config
            .fault_counts
            .iter()
            .enumerate()
            .map(|(fi, &fc)| {
                let mut headers = vec!["rate".to_string()];
                headers.extend(self.config.routers.iter().map(|r| r.name().to_string()));
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let mut t = Table::new(
                    format!(
                        "accepted throughput (flits/node/cycle) — {}x{} mesh, {} faults",
                        self.config.mesh, self.config.mesh, fc
                    ),
                    &header_refs,
                );
                for (ri, &rate) in self.config.rates.iter().enumerate() {
                    let mut row = vec![f3(rate)];
                    for ki in 0..self.config.routers.len() {
                        row.push(match grid.at(fi, ri, ki) {
                            // Early-exited points have no measured
                            // throughput — mark, don't print 0.000.
                            Some(p) if !p.simulated => "sat".to_string(),
                            Some(p) => f3(p.stats.accepted_flits_per_node_cycle()),
                            None => "-".to_string(),
                        });
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }
}

/// The synthesized statistics of a rate-ladder early exit: the
/// `saturated` verdict inherited from a lower rate, zeroed counters (no
/// cycles were simulated), and the real healthy-node count so the point
/// stays comparable in per-node denominators.
fn saturated_placeholder(net: &NetView, sim: &SimConfig) -> TrafficStats {
    let faults = net.faults();
    TrafficStats {
        cycles: 0,
        nodes: net.mesh().iter().filter(|&c| faults.is_healthy(c)).count(),
        measure_window: sim.measure,
        generated: 0,
        measured_generated: 0,
        measured_delivered: 0,
        unroutable: 0,
        ttl_dropped: 0,
        escape_packets: 0,
        measured_flits_ejected: 0,
        flits_moved: 0,
        latency: LatencyHistogram::new(1),
        saturated: true,
        deadlocked: false,
        epoch_delivered: vec![0; sim.fault_churn.len() + 1],
        churn_dropped: 0,
        churn_killed: 0,
        churn_rejected: 0,
        online_events: Vec::new(),
    }
}

/// Executes the sweep on a worker pool. The fault configuration for a
/// given fault count derives from the seed alone, so every router and
/// rate sees the *same* faults — the comparison is paired. The
/// expensive per-fault-count network analysis (MCC labeling + info
/// models across four orientations) runs once up front; `Network` is
/// `Send + Sync`, so the workers share the results by reference (each
/// task still builds its own router and path table, which are not
/// `Send`).
pub fn run_load_sweep(config: &LoadSweepConfig) -> LoadSweepResult {
    let mesh = Mesh::square(config.mesh);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
    } else {
        config.threads
    };

    // One analyzed network per fault count, shared across workers.
    let nets: Vec<NetView> = config
        .fault_counts
        .iter()
        .enumerate()
        .map(|(fi, &faults)| {
            let mut frng = StdRng::seed_from_u64(derive_seed(config.seed, fi as u64, 0));
            NetView::build(FaultSet::random(mesh, faults, config.injection, &mut frng))
        })
        .collect();

    // One task per (fault, router): a task sweeps every injection rate
    // through a single path table, so route compilation happens once
    // per (network, routing function) instead of once per rate.
    let (tx_task, rx_task) = channel::unbounded::<(usize, usize)>();
    for fi in 0..config.fault_counts.len() {
        for ki in 0..config.routers.len() {
            tx_task.send((fi, ki)).expect("queue open");
        }
    }
    drop(tx_task);

    let (n_rates, n_routers) = (config.rates.len(), config.routers.len());
    let (tx_res, rx_res) = channel::unbounded::<(usize, LoadPoint)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let rx_task = rx_task.clone();
            let tx_res = tx_res.clone();
            let cfg = config.clone();
            let nets = &nets;
            scope.spawn(move |_| {
                while let Ok((fi, ki)) = rx_task.recv() {
                    let faults = cfg.fault_counts[fi];
                    let router = cfg.routers[ki];
                    let net = &nets[fi];
                    let mut paths = PathTable::new(net, router);
                    // Lowest rate at which this (router, faults) ladder
                    // saturated or deadlocked: offered load only grows
                    // with the rate, so every higher rate inherits the
                    // verdict without simulating (early exit).
                    let mut sat_from: Option<f64> = None;
                    for (ri, &rate) in cfg.rates.iter().enumerate() {
                        let point = if cfg.early_exit && sat_from.is_some_and(|s| rate >= s) {
                            LoadPoint {
                                router,
                                faults,
                                rate,
                                stats: saturated_placeholder(net, &cfg.sim),
                                simulated: false,
                                sim_wall_ms: 0.0,
                                obs: None,
                                workload: None,
                                trace: None,
                            }
                        } else {
                            let sim = SimConfig {
                                rate,
                                seed: derive_seed(cfg.seed, fi as u64, ri as u64 + 1),
                                ..cfg.sim.clone()
                            };
                            // The stall observer only ever cuts a
                            // *wedged* drain short (4 consecutive
                            // delivery-free windows), so live runs —
                            // including honestly-saturated ones that
                            // keep draining — are untouched.
                            let mut stall = DrainStallObserver::new(4);
                            let mut passive = ();
                            let observer: &mut dyn WindowObserver =
                                if cfg.early_exit { &mut stall } else { &mut passive };
                            let started = Instant::now();
                            let mut run = TrafficSim::new(&mut paths, sim);
                            if let Some(spec) = &cfg.workload {
                                run = run.with_workload(spec.build(net));
                            }
                            let out = run.run_full(observer);
                            let sim_wall_ms = started.elapsed().as_secs_f64() * 1e3;
                            if out.stats.saturated || out.stats.deadlocked {
                                sat_from = Some(sat_from.map_or(rate, |s: f64| s.min(rate)));
                            }
                            LoadPoint {
                                router,
                                faults,
                                rate,
                                stats: out.stats,
                                simulated: true,
                                sim_wall_ms,
                                obs: out.obs,
                                workload: out.workload,
                                trace: out.trace,
                            }
                        };
                        let idx = (fi * n_rates + ri) * n_routers + ki;
                        tx_res.send((idx, point)).expect("result channel open");
                    }
                }
            });
        }
        drop(tx_res);
    })
    .expect("worker panicked");

    let total = config.fault_counts.len() * n_rates * n_routers;
    let mut slots: Vec<Option<LoadPoint>> = (0..total).map(|_| None).collect();
    while let Ok((idx, p)) = rx_res.recv() {
        slots[idx] = Some(p);
    }
    let points = slots.into_iter().map(|p| p.expect("all tasks completed")).collect();
    LoadSweepResult { config: config.clone(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_traffic::{InjectionProcess, LengthDist, ObsLevel};

    #[test]
    fn smoke_sweep_completes_and_is_deterministic() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let a = run_load_sweep(&cfg);
        let b = run_load_sweep(&cfg);
        assert_eq!(a.points.len(), cfg.fault_counts.len() * cfg.rates.len() * cfg.routers.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.stats, pb.stats, "parallel scheduling must not change results");
            assert_eq!(pa.router, pb.router);
        }
    }

    #[test]
    fn tables_render_every_grid_point() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let res = run_load_sweep(&cfg);
        let lat = res.latency_tables();
        assert_eq!(lat.len(), cfg.fault_counts.len());
        for t in &lat {
            assert_eq!(t.len(), cfg.rates.len());
            let text = t.to_text();
            assert!(text.contains("XY") && text.contains("RB2"), "{text}");
        }
        let thr = res.throughput_tables();
        assert_eq!(thr.len(), cfg.fault_counts.len());
    }

    #[test]
    fn json_rows_cover_every_grid_point() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let res = run_load_sweep(&cfg);
        let json = res.to_json();
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, one row object per grid point, key fields present.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
        assert_eq!(json.matches("\"router\"").count(), res.points.len());
        for key in [
            "\"mean_latency\"",
            "\"escape_packets\"",
            "\"deadlocked\"",
            "\"escape_vcs\"",
            "\"sim_wall_ms\"",
            "\"mflits_per_sec\"",
            "\"flits_moved\"",
            "\"simulated\"",
            // The sharding knobs ride in the config object so a BENCH
            // row is attributable to its transport configuration.
            "\"tile_cols\"",
            "\"lease\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Every smoke point is low-load, hence actually simulated, with
        // a recorded wall clock and work total.
        for p in &res.points {
            assert!(p.simulated, "no smoke point saturates, none may be skipped");
            assert!(p.sim_wall_ms > 0.0, "simulated points must record wall time");
            assert!(p.stats.flits_moved > 0, "simulated points must record flit-hops");
        }
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"), "trailing comma: {json}");
    }

    /// The `rows` array of a sweep JSON document with the wall-clock
    /// fields (`sim_wall_ms`, `mflits_per_sec` — the only
    /// non-deterministic values in a row) blanked out.
    fn rows_without_wall_clock(json: &str) -> String {
        let rows = json.split("\"rows\": [").nth(1).expect("rows array present");
        rows.lines()
            .map(|line| {
                let mut out = String::new();
                for field in line.split(", ") {
                    if field.starts_with("\"sim_wall_ms\"")
                        || field.starts_with("\"mflits_per_sec\"")
                    {
                        continue;
                    }
                    if !out.is_empty() {
                        out.push_str(", ");
                    }
                    out.push_str(field);
                }
                out
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn sharded_sweep_rows_are_byte_identical_across_thread_counts() {
        // The tentpole determinism claim at the artifact level: the
        // same seeded 32x32 sweep emits byte-identical `--json` rows —
        // not just equal aggregate stats — at sim threads 1, 2 and 4
        // (only the wall-clock fields may differ).
        let cfg = LoadSweepConfig {
            mesh: 32,
            fault_counts: vec![6],
            rates: vec![0.01],
            routers: vec![RoutingKind::Rb2],
            sim: SimConfig { threads: 1, ..SimConfig::smoke() },
            threads: 1,
            ..Default::default()
        };
        let reference = rows_without_wall_clock(&run_load_sweep(&cfg).to_json());
        assert!(reference.contains("\"router\""), "rows must survive normalization");
        for sim_threads in [2usize, 4] {
            let sharded = LoadSweepConfig {
                sim: SimConfig { threads: sim_threads, ..cfg.sim.clone() },
                ..cfg.clone()
            };
            let rows = rows_without_wall_clock(&run_load_sweep(&sharded).to_json());
            assert_eq!(rows, reference, "rows diverged at sim threads {sim_threads}");
        }
    }

    #[test]
    fn obs_sweep_records_reports_and_emits_the_json_section() {
        let mut cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        cfg.sim.obs = ObsLevel::Metrics;
        let res = run_load_sweep(&cfg);
        for p in &res.points {
            let r = p.obs.as_ref().expect("every simulated smoke point carries a report");
            assert_eq!(r.level, ObsLevel::Metrics);
            assert!(r.link_flits.iter().sum::<u64>() > 0, "traffic moved, links counted");
            assert!(r.delivered > 0);
            assert!(r.postmortem.is_none(), "smoke points do not wedge");
        }
        let json = res.to_json();
        assert!(json.contains("\"obs\": \"metrics\""), "{json}");
        assert!(json.contains("\"obs_report\": ["), "{json}");
        assert_eq!(json.matches("\"plan_ns\"").count(), res.points.len());
        assert_eq!(json.matches("\"barriers\"").count(), res.points.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        // The instrumented sweep's statistics stay bit-identical to the
        // bare sweep's (the sweep-level face of the golden guarantee).
        let bare = run_load_sweep(&LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() });
        for (pa, pb) in res.points.iter().zip(&bare.points) {
            assert_eq!(pa.stats, pb.stats, "metrics recording must not perturb the run");
            assert!(pb.obs.is_none(), "obs off means no report");
        }
    }

    #[test]
    fn scenario_axes_are_recorded_in_json() {
        // The bursty injection process and the geometric length
        // distribution both run through the sweep and are named in the
        // emitted config.
        let cfg = LoadSweepConfig {
            sim: SimConfig {
                injection: InjectionProcess::MarkovOnOff { on_to_off: 0.2, off_to_on: 0.05 },
                length: LengthDist::Geometric { max: 16 },
                ..SimConfig::smoke()
            },
            threads: 2,
            ..LoadSweepConfig::smoke()
        };
        let res = run_load_sweep(&cfg);
        let json = res.to_json();
        assert!(json.contains("\"injection\": \"markov-on-off\""), "{json}");
        assert!(json.contains("\"length\": \"geometric\""), "{json}");
        assert!(json.contains("\"sim_threads\": "), "{json}");
        for p in &res.points {
            assert!(p.simulated && p.stats.measured_generated > 0, "bursty points must run");
        }
        // The default config names the baseline processes.
        let base = run_load_sweep(&LoadSweepConfig::smoke()).to_json();
        assert!(base.contains("\"injection\": \"bernoulli\""), "{base}");
        assert!(base.contains("\"length\": \"fixed\""), "{base}");
    }

    #[test]
    fn point_still_finds_entries_off_the_config_axes() {
        // A hand-assembled result may hold points the config axes
        // don't name; the grid index must fall back to the exhaustive
        // search for those rather than returning None.
        let cfg = LoadSweepConfig { threads: 1, ..LoadSweepConfig::smoke() };
        let mut res = run_load_sweep(&cfg);
        let mut stray = res.points[0].clone();
        stray.faults = 7; // not in cfg.fault_counts
        res.points.push(stray.clone());
        let found = res.point(stray.router, 7, stray.rate).expect("off-axis point reachable");
        assert_eq!(found.faults, 7);
        // On-axis lookups still resolve through the arithmetic index.
        let p = &res.points[0];
        assert!(res.point(p.router, p.faults, p.rate).is_some());
    }

    #[test]
    fn early_exit_marks_higher_rates_saturated_without_simulating() {
        // 0.3 packets/node/cycle on a 6x6 mesh is several times past
        // capacity: the ladder saturates at its first rate, so the
        // higher rates must be synthesized, not resimulated.
        let cfg = LoadSweepConfig {
            mesh: 6,
            fault_counts: vec![0],
            rates: vec![0.3, 0.6, 0.9],
            routers: vec![RoutingKind::Xy],
            sim: SimConfig { warmup: 50, measure: 300, drain: 150, ..SimConfig::default() },
            threads: 1,
            ..Default::default()
        };
        assert!(cfg.early_exit, "early exit is the default");
        let res = run_load_sweep(&cfg);
        let first = res.point(RoutingKind::Xy, 0, 0.3).expect("swept");
        assert!(first.simulated, "the saturation onset itself is simulated");
        assert!(first.stats.saturated || first.stats.deadlocked);
        assert!(first.sim_wall_ms > 0.0);
        for &rate in &[0.6, 0.9] {
            let p = res.point(RoutingKind::Xy, 0, rate).expect("swept");
            assert!(!p.simulated, "rate {rate} must be early-exited");
            assert!(p.stats.saturated && !p.stats.deadlocked);
            assert_eq!(p.stats.cycles, 0, "never resimulated");
            assert_eq!(p.sim_wall_ms, 0.0);
            assert_eq!(p.stats.nodes, 36, "healthy-node denominator still real");
        }
        // Tables render the synthesized points as `sat`, not as
        // misleading zeros.
        let lat = res.latency_tables();
        assert!(lat[0].to_text().matches("sat").count() >= 2, "{}", lat[0].to_text());
        // With early exit disabled, every point is simulated.
        let full = run_load_sweep(&LoadSweepConfig { early_exit: false, ..cfg });
        assert!(full.points.iter().all(|p| p.simulated));
        assert!(full.points.iter().all(|p| p.stats.saturated || p.stats.deadlocked));
    }

    #[test]
    fn workload_sweep_carries_flow_metrics_into_json() {
        // An all-to-all collective sweep point: the workload replaces
        // the synthetic generators, the outcome rides in the point and
        // the flow/phase metrics ride in the JSON rows.
        let cfg = LoadSweepConfig {
            mesh: 8,
            fault_counts: vec![0, 2],
            rates: vec![0.01],
            routers: vec![RoutingKind::Xy, RoutingKind::Rb2],
            sim: SimConfig::smoke(),
            threads: 2,
            workload: Some(WorkloadSpec::AllToAll { rounds: 2, len: 4 }),
            ..Default::default()
        };
        let res = run_load_sweep(&cfg);
        for p in &res.points {
            let wl = p.workload.as_ref().expect("workload points carry an outcome");
            assert_eq!(wl.phases.len(), 2, "both rounds completed");
            assert!(wl.flows_delivered > 0);
            assert!(wl.phase_cycles().iter().all(|&c| c > 0));
            // Every generated packet came from the workload (released
            // also counts admission-rejected flows, e.g. a fault draw
            // that disconnects a participant).
            assert!(p.stats.generated <= wl.released, "workload replaces the generators");
            assert!(p.stats.generated > 0);
        }
        // Same spec, same seed: the sweep is paired, so the fault-free
        // phase times are identical across routers only if the routers
        // are — which they are not; just check determinism per router.
        let again = run_load_sweep(&cfg);
        for (pa, pb) in res.points.iter().zip(&again.points) {
            assert_eq!(pa.stats, pb.stats);
            assert_eq!(pa.workload, pb.workload);
        }
        let json = res.to_json();
        for key in [
            "\"workload\": \"alltoall\"",
            "\"flows_delivered\"",
            "\"flows_aborted\"",
            "\"flow_p50\"",
            "\"flow_p99\"",
            "\"flow_makespan\"",
            "\"phase_cycles\": [",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"phase_cycles\"").count(), res.points.len());
    }

    #[test]
    fn low_load_latency_orders_sanely_under_faults() {
        // At low load with faults, RB2 (shortest paths) must not be
        // slower on average than the block-detouring E-cube.
        let cfg = LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![12],
            rates: vec![0.005],
            routers: vec![RoutingKind::ECube, RoutingKind::Rb2],
            sim: SimConfig::smoke(),
            threads: 2,
            ..Default::default()
        };
        let res = run_load_sweep(&cfg);
        let ecube = res.point(RoutingKind::ECube, 12, 0.005).unwrap();
        let rb2 = res.point(RoutingKind::Rb2, 12, 0.005).unwrap();
        assert!(!rb2.stats.saturated && !ecube.stats.saturated);
        assert!(
            rb2.stats.mean_latency() <= ecube.stats.mean_latency() + 1e-9,
            "RB2 {} vs E-cube {}",
            rb2.stats.mean_latency(),
            ecube.stats.mean_latency()
        );
    }
}
