//! Result tables: aligned text and CSV rendering.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed for numeric tables).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with one decimal (the paper's plot resolution).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with three decimals (relative errors).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.0".into()]);
        t.push_row(vec!["100".into(), "2.5".into()]);
        let text = t.to_text();
        assert!(text.contains("# demo"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
