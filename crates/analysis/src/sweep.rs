//! The fault-count sweep: workload generation and parallel execution.

use std::num::NonZeroUsize;

use crossbeam::channel;
use meshpath_fault::stats::{stats_of, FaultConfigStats};
use meshpath_info::{ModelKind, PropagationStats};
use meshpath_mesh::{Coord, FaultInjection, FaultSet, Mesh, Orientation};
use meshpath_route::oracle::DistanceField;
use meshpath_route::{ECube, NetView, Rb1, Rb2, Rb3, Router};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of one sweep (defaults reproduce the paper's setup at a
/// laptop-friendly number of repetitions).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Mesh side length (the paper: 100).
    pub mesh: u32,
    /// Fault counts to evaluate (the paper: 0..=3000).
    pub fault_counts: Vec<usize>,
    /// Random fault configurations per fault count.
    pub configs_per_point: usize,
    /// Source/destination pairs routed per configuration.
    pub pairs_per_config: usize,
    /// Base RNG seed; every (fault count, configuration) derives its own
    /// stream, so results are reproducible and order-independent.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Fault placement model.
    pub injection: FaultInjection,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mesh: 100,
            fault_counts: (0..=3000).step_by(250).collect(),
            configs_per_point: 10,
            pairs_per_config: 50,
            seed: 0x2007_0325,
            threads: 0,
            injection: FaultInjection::Uniform,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        SweepConfig {
            mesh: 30,
            fault_counts: vec![0, 60, 120, 180],
            configs_per_point: 3,
            pairs_per_config: 12,
            ..Default::default()
        }
    }
}

/// Routing aggregate for one router over one configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterAgg {
    /// Pairs attempted.
    pub pairs: u32,
    /// Pairs delivered within budget.
    pub delivered: u32,
    /// Pairs delivered at exactly the BFS-optimal length.
    pub shortest: u32,
    /// Sum of achieved path lengths (delivered pairs).
    pub sum_len: u64,
    /// Sum of optimal lengths (delivered pairs).
    pub sum_opt: u64,
    /// Sum of per-pair relative errors `(len - opt) / opt`.
    pub sum_rel_err: f64,
    /// Total BFS-fallback plans used (RB2/RB3 instrumentation).
    pub fallbacks: u32,
}

impl RouterAgg {
    /// Percentage of pairs routed along a true shortest path.
    pub fn shortest_pct(&self) -> f64 {
        if self.pairs == 0 {
            100.0
        } else {
            100.0 * self.shortest as f64 / self.pairs as f64
        }
    }

    /// Mean relative error over delivered pairs.
    pub fn rel_err(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.sum_rel_err / self.delivered as f64
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &RouterAgg) {
        self.pairs += other.pairs;
        self.delivered += other.delivered;
        self.shortest += other.shortest;
        self.sum_len += other.sum_len;
        self.sum_opt += other.sum_opt;
        self.sum_rel_err += other.sum_rel_err;
        self.fallbacks += other.fallbacks;
    }
}

/// Everything measured on one fault configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigRecord {
    /// Number of injected faults.
    pub faults: usize,
    /// Fig. 5(a)/(b) statistics (identity orientation).
    pub fault_stats: FaultConfigStats,
    /// Fig. 5(c): propagation cost per model, averaged over the four
    /// orientations (the model is built per routing quadrant).
    pub prop: [PropagationStats; 3],
    /// Fig. 5(d)/(e): routing aggregates for `[E-cube, RB1, RB2, RB3]`.
    pub routing: [RouterAgg; 4],
}

/// The routers evaluated, in reporting order.
pub const ROUTER_NAMES: [&str; 4] = ["E-cube", "RB1", "RB2", "RB3"];

/// The full sweep outcome: one record per (fault count, configuration).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// The configuration that produced this result.
    pub config: SweepConfig,
    /// Records grouped by fault count (same order as
    /// `config.fault_counts`), one inner entry per configuration.
    pub records: Vec<Vec<ConfigRecord>>,
}

impl SweepResult {
    /// Iterator over `(fault_count, records-at-that-count)`.
    pub fn by_count(&self) -> impl Iterator<Item = (usize, &[ConfigRecord])> {
        self.config.fault_counts.iter().copied().zip(self.records.iter().map(|v| v.as_slice()))
    }
}

/// SplitMix64 per-task seed derivation (the workspace-wide canonical
/// mixer lives in `meshpath_mesh::derive_seed`).
pub(crate) use meshpath_mesh::derive_seed;

/// Runs one configuration: builds the network, measures fault and
/// propagation statistics, and routes `pairs` random pairs per router.
pub fn run_config(mesh: Mesh, faults: FaultSet, pairs: usize, seed: u64) -> ConfigRecord {
    let fault_count = faults.count();
    let net = NetView::build(faults);
    let fault_stats = stats_of(net.faults(), net.mccs(Orientation::IDENTITY));

    // Propagation cost per model, averaged over orientations.
    let mut prop = [PropagationStats::default(); 3];
    for (k, kind) in ModelKind::ALL.into_iter().enumerate() {
        let mut acc = PropagationStats::default();
        for o in Orientation::ALL {
            let s = net.model(o, kind).stats();
            acc.involved_nodes += s.involved_nodes;
            acc.safe_nodes += s.safe_nodes;
            acc.messages += s.messages;
            acc.per_mcc_max += s.per_mcc_max;
            acc.per_mcc_avg += s.per_mcc_avg;
        }
        prop[k] = PropagationStats {
            involved_nodes: acc.involved_nodes / 4,
            safe_nodes: acc.safe_nodes / 4,
            messages: acc.messages / 4,
            per_mcc_max: acc.per_mcc_max / 4,
            per_mcc_avg: acc.per_mcc_avg / 4.0,
        };
    }

    // Routing pairs.
    let mut rng = StdRng::seed_from_u64(seed);
    let routers: [&dyn Router; 4] = [&ECube, &Rb1::default(), &Rb2::default(), &Rb3::default()];
    let mut routing = [RouterAgg::default(); 4];

    let n = mesh.width() as i32;
    let safe_for = |c: Coord, s: Coord, d: Coord| {
        let o = Orientation::normalizing(s, d);
        net.mccs(o).labeling().status_real(c).is_safe()
    };

    let mut routed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = pairs * 400;
    while routed < pairs && attempts < max_attempts {
        attempts += 1;
        let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..mesh.height() as i32));
        let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..mesh.height() as i32));
        if s == d || !safe_for(s, s, d) || !safe_for(d, s, d) {
            continue;
        }
        let field = DistanceField::healthy(net.faults(), d);
        if !field.reachable(s) {
            continue; // the paper only routes connected pairs
        }
        let opt = field.dist(s);
        routed += 1;
        for (agg, router) in routing.iter_mut().zip(routers.iter()) {
            let res = router.route(&net, s, d);
            agg.pairs += 1;
            agg.fallbacks += res.fallbacks;
            if res.delivered {
                agg.delivered += 1;
                agg.sum_len += u64::from(res.hops());
                agg.sum_opt += u64::from(opt);
                if res.hops() == opt {
                    agg.shortest += 1;
                }
                if opt > 0 {
                    agg.sum_rel_err += (f64::from(res.hops()) - f64::from(opt)) / f64::from(opt);
                }
            }
        }
    }

    ConfigRecord { faults: fault_count, fault_stats, prop, routing }
}

/// Executes the sweep: every (fault count, configuration) task runs on a
/// crossbeam worker pool; results are deterministic for a given seed.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let mesh = Mesh::square(config.mesh);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
    } else {
        config.threads
    };

    // Task list: (point index, config index, fault count).
    let tasks: Vec<(usize, usize, usize)> = config
        .fault_counts
        .iter()
        .enumerate()
        .flat_map(|(pi, &fc)| (0..config.configs_per_point).map(move |ci| (pi, ci, fc)))
        .collect();

    let (tx_task, rx_task) = channel::unbounded::<(usize, usize, usize)>();
    for t in &tasks {
        tx_task.send(*t).expect("queue open");
    }
    drop(tx_task);

    let (tx_res, rx_res) = channel::unbounded::<(usize, usize, ConfigRecord)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let rx_task = rx_task.clone();
            let tx_res = tx_res.clone();
            let cfg = config.clone();
            scope.spawn(move |_| {
                while let Ok((pi, ci, fc)) = rx_task.recv() {
                    let seed = derive_seed(cfg.seed, pi as u64, ci as u64);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let faults = FaultSet::random(mesh, fc, cfg.injection, &mut rng);
                    let record =
                        run_config(mesh, faults, cfg.pairs_per_config, derive_seed(seed, 7, 13));
                    tx_res.send((pi, ci, record)).expect("result channel open");
                }
            });
        }
        drop(tx_res);
    })
    .expect("worker panicked");

    let mut records: Vec<Vec<Option<ConfigRecord>>> =
        vec![vec![None; config.configs_per_point]; config.fault_counts.len()];
    while let Ok((pi, ci, rec)) = rx_res.recv() {
        records[pi][ci] = Some(rec);
    }
    let records = records
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.expect("all tasks completed")).collect())
        .collect();

    SweepResult { config: config.clone(), records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_complete() {
        let cfg = SweepConfig { threads: 2, ..SweepConfig::smoke() };
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a.records.len(), cfg.fault_counts.len());
        for (i, row) in a.records.iter().enumerate() {
            assert_eq!(row.len(), cfg.configs_per_point);
            for (j, rec) in row.iter().enumerate() {
                assert_eq!(rec.faults, cfg.fault_counts[i]);
                // Determinism across runs (parallel scheduling must not
                // change results).
                assert_eq!(rec.fault_stats, b.records[i][j].fault_stats);
                assert_eq!(rec.routing, b.records[i][j].routing);
            }
        }
    }

    #[test]
    fn zero_fault_point_routes_perfectly() {
        let cfg = SweepConfig {
            mesh: 16,
            fault_counts: vec![0],
            configs_per_point: 1,
            pairs_per_config: 10,
            threads: 1,
            ..Default::default()
        };
        let res = run_sweep(&cfg);
        let rec = &res.records[0][0];
        assert_eq!(rec.fault_stats.disabled, 0);
        assert_eq!(rec.fault_stats.mcc_count, 0);
        for agg in &rec.routing {
            assert_eq!(agg.pairs, 10);
            assert_eq!(agg.shortest, 10);
            assert_eq!(agg.rel_err(), 0.0);
            assert_eq!(agg.shortest_pct(), 100.0);
        }
        for p in &rec.prop {
            assert_eq!(p.involved_nodes, 0);
        }
    }

    #[test]
    fn router_agg_merge() {
        let mut a = RouterAgg { pairs: 2, delivered: 2, shortest: 1, ..Default::default() };
        let b = RouterAgg { pairs: 3, delivered: 2, shortest: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pairs, 5);
        assert_eq!(a.shortest, 3);
    }

    #[test]
    fn derive_seed_spreads() {
        let s = derive_seed(42, 1, 2);
        assert_ne!(s, derive_seed(42, 2, 1));
        assert_ne!(s, derive_seed(43, 1, 2));
        assert_eq!(s, derive_seed(42, 1, 2));
    }
}
