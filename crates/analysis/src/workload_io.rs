//! Workload file I/O: the versioned JSONL packet-trace format
//! (`--record-trace` / `--workload trace:FILE`) and the flow-DAG file
//! format (`--workload dag:FILE`), both emitted and parsed through
//! [`crate::jsonl`] so the hand-rolled JSON lives in one place.
//!
//! ## Trace format (version 1)
//!
//! Line 1 is the header, then one flat object per recorded entry:
//!
//! ```json
//! {"format": "meshpath-trace", "version": 1, "horizon": 120, "entries": 2}
//! {"cycle": 0, "src_x": 1, "src_y": 2, "dst_x": 5, "dst_y": 0, "len": 4, "flow": 4294967295, "drop": 0}
//! {"cycle": 3, "src_x": 0, "src_y": 0, "dst_x": 7, "dst_y": 7, "len": 0, "flow": 4294967295, "drop": 1}
//! ```
//!
//! `drop` is 0 for injected packets, 1 for unroutable rejections and 2
//! for TTL rejections; rejections carry `len: 0` and exist so a replay
//! reproduces the recording run's drop counters (and RNG-free
//! admission schedule) exactly. `horizon` is the recording run's
//! generation horizon (`warmup + measure` for synthetic runs): the
//! replay holds the simulation open until it so both runs terminate on
//! the same cycle.
//!
//! ## DAG format (version 1)
//!
//! Line 1 is the header, then one flow per line; `deps` names flows by
//! their `name` field and must form a DAG:
//!
//! ```json
//! {"format": "meshpath-dag", "version": 1, "flows": 2}
//! {"name": "a", "src_x": 0, "src_y": 0, "dst_x": 7, "dst_y": 7, "len": 8, "deps": [], "earliest": 0}
//! {"name": "b", "src_x": 7, "src_y": 7, "dst_x": 0, "dst_y": 0, "len": 4, "deps": ["a"], "earliest": 0}
//! ```

use std::fmt;

use meshpath_mesh::Coord;
use meshpath_traffic::TraceEntry;
use meshpath_workload::{DagSpec, FlowDag, FlowSpec};

use crate::jsonl::{parse_flat, FlatValue, JsonObject};

/// Current version of both on-disk formats.
pub const WORKLOAD_FORMAT_VERSION: u64 = 1;

/// Why a workload file failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadIoError {
    /// The file is empty or its header line is missing/invalid.
    BadHeader(String),
    /// The header names a format or version this reader cannot take.
    UnsupportedFormat {
        /// The `format` string found (empty if absent).
        format: String,
        /// The `version` found (0 if absent).
        version: u64,
    },
    /// A body line failed to parse (1-based line number + reason).
    BadLine(usize, String),
    /// The parsed DAG failed validation (unknown dep, cycle, ...).
    InvalidDag(String),
}

impl fmt::Display for WorkloadIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadIoError::BadHeader(why) => write!(f, "bad workload file header: {why}"),
            WorkloadIoError::UnsupportedFormat { format, version } => {
                write!(f, "unsupported workload file format {format:?} version {version}")
            }
            WorkloadIoError::BadLine(n, why) => write!(f, "line {n}: {why}"),
            WorkloadIoError::InvalidDag(why) => write!(f, "invalid DAG: {why}"),
        }
    }
}

impl std::error::Error for WorkloadIoError {}

/// Renders a recorded trace in the version-1 format.
pub fn write_trace(entries: &[TraceEntry], horizon: u64) -> String {
    let mut out = String::with_capacity(64 + 96 * entries.len());
    let mut header = JsonObject::new();
    header
        .string("format", "meshpath-trace")
        .field("version", WORKLOAD_FORMAT_VERSION)
        .field("horizon", horizon)
        .field("entries", entries.len());
    out.push_str(&header.render());
    out.push('\n');
    for e in entries {
        let mut o = JsonObject::new();
        o.field("cycle", e.cycle)
            .field("src_x", e.src.x)
            .field("src_y", e.src.y)
            .field("dst_x", e.dst.x)
            .field("dst_y", e.dst.y)
            .field("len", e.len)
            .field("flow", e.flow)
            .field("drop", e.drop);
        out.push_str(&o.render());
        out.push('\n');
    }
    out
}

/// Looks up `key` in a parsed flat object.
fn get<'a>(pairs: &'a [(String, FlatValue)], key: &str) -> Option<&'a FlatValue> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(pairs: &[(String, FlatValue)], key: &str) -> Result<u64, String> {
    get(pairs, key)
        .and_then(FlatValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_coord(pairs: &[(String, FlatValue)], xk: &str, yk: &str) -> Result<Coord, String> {
    let read = |key: &str| -> Result<i32, String> {
        match get(pairs, key) {
            Some(FlatValue::Num(n)) if n.fract() == 0.0 => Ok(*n as i32),
            _ => Err(format!("missing or non-integer field {key:?}")),
        }
    };
    Ok(Coord::new(read(xk)?, read(yk)?))
}

/// Parses and validates the header line; returns its pairs.
fn read_header(text: &str, format: &str) -> Result<Vec<(String, FlatValue)>, WorkloadIoError> {
    let first =
        text.lines().next().ok_or_else(|| WorkloadIoError::BadHeader("empty file".to_string()))?;
    let pairs = parse_flat(first).map_err(WorkloadIoError::BadHeader)?;
    let found = get(&pairs, "format").and_then(FlatValue::as_str).unwrap_or("").to_string();
    let version = get(&pairs, "version").and_then(FlatValue::as_u64).unwrap_or(0);
    if found != format || version != WORKLOAD_FORMAT_VERSION {
        return Err(WorkloadIoError::UnsupportedFormat { format: found, version });
    }
    Ok(pairs)
}

/// Parses a version-1 trace file into its entries and horizon.
pub fn read_trace(text: &str) -> Result<(Vec<TraceEntry>, u64), WorkloadIoError> {
    let header = read_header(text, "meshpath-trace")?;
    let horizon = get_u64(&header, "horizon").map_err(WorkloadIoError::BadHeader)?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat(line).map_err(|e| WorkloadIoError::BadLine(i + 1, e))?;
        let field =
            |key: &str| get_u64(&pairs, key).map_err(|e| WorkloadIoError::BadLine(i + 1, e));
        entries.push(TraceEntry {
            cycle: field("cycle")?,
            src: get_coord(&pairs, "src_x", "src_y")
                .map_err(|e| WorkloadIoError::BadLine(i + 1, e))?,
            dst: get_coord(&pairs, "dst_x", "dst_y")
                .map_err(|e| WorkloadIoError::BadLine(i + 1, e))?,
            len: field("len")? as u32,
            flow: field("flow")? as u32,
            drop: field("drop")? as u8,
        });
    }
    if let Some(FlatValue::Num(n)) = get(&header, "entries") {
        if *n as usize != entries.len() {
            return Err(WorkloadIoError::BadHeader(format!(
                "header promises {n} entries, file has {}",
                entries.len()
            )));
        }
    }
    Ok((entries, horizon))
}

/// Renders a DAG spec in the version-1 format.
pub fn write_dag(spec: &DagSpec) -> String {
    let mut out = String::with_capacity(64 + 96 * spec.flows.len());
    let mut header = JsonObject::new();
    header
        .string("format", "meshpath-dag")
        .field("version", WORKLOAD_FORMAT_VERSION)
        .field("flows", spec.flows.len());
    out.push_str(&header.render());
    out.push('\n');
    for f in &spec.flows {
        let mut o = JsonObject::new();
        o.string("name", &f.name)
            .field("src_x", f.src.x)
            .field("src_y", f.src.y)
            .field("dst_x", f.dst.x)
            .field("dst_y", f.dst.y)
            .field("len", f.len)
            // `field` takes the raw (unquoted) form, which is how the
            // string array rides through the emitter.
            .field("deps", render_deps(&f.deps))
            .field("earliest", f.earliest);
        out.push_str(&o.render());
        out.push('\n');
    }
    out
}

// `JsonObject` has no string-array emitter; render deps inline through
// its `field` raw path (the names share the restricted charset the
// emitter enforces for strings).
fn render_deps(deps: &[String]) -> String {
    let mut s = String::from("[");
    for (i, d) in deps.iter().enumerate() {
        assert!(
            d.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
            "DAG flow names stay in the restricted charset: {d:?}"
        );
        if i > 0 {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(d);
        s.push('"');
    }
    s.push(']');
    s
}

/// Parses a version-1 DAG file and validates it (via [`FlowDag::new`],
/// the validating constructor), returning the spec.
pub fn read_dag(text: &str) -> Result<DagSpec, WorkloadIoError> {
    read_header(text, "meshpath-dag")?;
    let mut flows = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat(line).map_err(|e| WorkloadIoError::BadLine(i + 1, e))?;
        let bad = |e| WorkloadIoError::BadLine(i + 1, e);
        flows.push(FlowSpec {
            name: get(&pairs, "name")
                .and_then(FlatValue::as_str)
                .ok_or_else(|| bad("missing string field \"name\"".to_string()))?
                .to_string(),
            src: get_coord(&pairs, "src_x", "src_y").map_err(bad)?,
            dst: get_coord(&pairs, "dst_x", "dst_y").map_err(bad)?,
            len: get_u64(&pairs, "len").map_err(bad)? as u32,
            deps: get(&pairs, "deps")
                .and_then(FlatValue::as_strs)
                .map(<[String]>::to_vec)
                .unwrap_or_default(),
            earliest: get_u64(&pairs, "earliest").unwrap_or(0),
        });
    }
    let spec = DagSpec { flows };
    FlowDag::new(spec.clone()).map_err(|e| WorkloadIoError::InvalidDag(e.to_string()))?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_traffic::NO_FLOW;
    use meshpath_workload::FlowSpec;

    #[test]
    fn traces_round_trip() {
        let entries = vec![
            TraceEntry {
                cycle: 0,
                src: Coord::new(1, 2),
                dst: Coord::new(5, 0),
                len: 4,
                flow: NO_FLOW,
                drop: 0,
            },
            TraceEntry {
                cycle: 3,
                src: Coord::new(0, 0),
                dst: Coord::new(7, 7),
                len: 0,
                flow: NO_FLOW,
                drop: 1,
            },
        ];
        let text = write_trace(&entries, 120);
        assert!(text.starts_with(
            "{\"format\": \"meshpath-trace\", \"version\": 1, \"horizon\": 120, \"entries\": 2}\n"
        ));
        let (parsed, horizon) = read_trace(&text).expect("round trip");
        assert_eq!(horizon, 120);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn trace_header_is_checked() {
        assert!(matches!(read_trace(""), Err(WorkloadIoError::BadHeader(_))));
        let wrong = "{\"format\": \"meshpath-dag\", \"version\": 1, \"horizon\": 3}\n";
        assert!(matches!(read_trace(wrong), Err(WorkloadIoError::UnsupportedFormat { .. })));
        let future = "{\"format\": \"meshpath-trace\", \"version\": 2, \"horizon\": 3}\n";
        assert!(matches!(read_trace(future), Err(WorkloadIoError::UnsupportedFormat { .. })));
        let miscount = write_trace(&[], 5).replace("\"entries\": 0", "\"entries\": 7");
        assert!(matches!(read_trace(&miscount), Err(WorkloadIoError::BadHeader(_))));
    }

    #[test]
    fn dags_round_trip_and_validate() {
        let spec = DagSpec {
            flows: vec![
                FlowSpec::root("a", Coord::new(0, 0), Coord::new(7, 7), 8),
                FlowSpec::after("b", Coord::new(7, 7), Coord::new(0, 0), 4, &["a"]),
            ],
        };
        let text = write_dag(&spec);
        assert!(text.contains("\"deps\": [\"a\"]"), "{text}");
        let parsed = read_dag(&text).expect("round trip");
        assert_eq!(parsed, spec);

        let cyclic = text.replace("\"deps\": []", "\"deps\": [\"b\"]");
        assert!(matches!(read_dag(&cyclic), Err(WorkloadIoError::InvalidDag(_))));
        let unnamed = text.replace("\"name\": \"a\", ", "");
        assert!(matches!(read_dag(&unnamed), Err(WorkloadIoError::BadLine(2, _))));
    }
}
