//! ASCII rendering of meshes, regions and routes.
//!
//! Debugging fault-model code without seeing the grid is miserable; this
//! module renders a mesh as rows of glyphs with `y` increasing upward
//! (matching the paper's figures) through a small layering API:
//!
//! ```
//! use meshpath_mesh::{Coord, FaultSet, Mesh};
//! use meshpath_mesh::render::GridRender;
//!
//! let mesh = Mesh::square(4);
//! let faults = FaultSet::from_coords(mesh, [Coord::new(1, 2)]);
//! let art = GridRender::new(mesh)
//!     .layer('#', |c| faults.is_faulty(c))
//!     .mark('S', Coord::new(0, 0))
//!     .to_string();
//! assert_eq!(art.lines().count(), 4);
//! assert!(art.contains('#'));
//! ```

use std::fmt;

use crate::coord::Coord;
use crate::mesh::Mesh;

type Layer<'a> = (char, Box<dyn Fn(Coord) -> bool + 'a>);

/// A composable ASCII renderer: later layers win over earlier ones.
pub struct GridRender<'a> {
    mesh: Mesh,
    background: char,
    layers: Vec<Layer<'a>>,
}

impl<'a> GridRender<'a> {
    /// A renderer over `mesh` with `.` as the background glyph.
    pub fn new(mesh: Mesh) -> Self {
        GridRender { mesh, background: '.', layers: Vec::new() }
    }

    /// Overrides the background glyph.
    pub fn background(mut self, glyph: char) -> Self {
        self.background = glyph;
        self
    }

    /// Adds a predicate layer drawn with `glyph`.
    pub fn layer(mut self, glyph: char, pred: impl Fn(Coord) -> bool + 'a) -> Self {
        self.layers.push((glyph, Box::new(pred)));
        self
    }

    /// Adds a path layer: every coordinate in `path` is drawn with `glyph`.
    pub fn path(self, glyph: char, path: &'a [Coord]) -> Self {
        self.layer(glyph, move |c| path.contains(&c))
    }

    /// Marks a single coordinate (e.g. source/destination).
    pub fn mark(self, glyph: char, at: Coord) -> Self {
        self.layer(glyph, move |c| c == at)
    }

    fn glyph_at(&self, c: Coord) -> char {
        for (glyph, pred) in self.layers.iter().rev() {
            if pred(c) {
                return *glyph;
            }
        }
        self.background
    }
}

impl fmt::Display for GridRender<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, h) = (self.mesh.width() as i32, self.mesh.height() as i32);
        for y in (0..h).rev() {
            for x in 0..w {
                write!(f, "{}", self.glyph_at(Coord::new(x, y)))?;
            }
            if y > 0 {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;

    #[test]
    fn renders_rows_top_down() {
        let mesh = Mesh::new(3, 2);
        let art = GridRender::new(mesh).mark('X', Coord::new(0, 0)).to_string();
        // y=1 row first, then y=0 row containing the mark at x=0.
        assert_eq!(art, "...\nX..");
    }

    #[test]
    fn later_layers_win() {
        let mesh = Mesh::square(2);
        let faults = FaultSet::from_coords(mesh, [Coord::new(0, 0)]);
        let art = GridRender::new(mesh)
            .layer('#', |c| faults.is_faulty(c))
            .mark('S', Coord::new(0, 0))
            .to_string();
        assert!(art.ends_with("S."));
    }

    #[test]
    fn path_layer() {
        let mesh = Mesh::square(3);
        let path = [Coord::new(0, 0), Coord::new(1, 0), Coord::new(1, 1)];
        let art = GridRender::new(mesh).path('*', &path).to_string();
        assert_eq!(art, "...\n.*.\n**.");
    }

    #[test]
    fn background_override() {
        let mesh = Mesh::square(2);
        let art = GridRender::new(mesh).background(' ').to_string();
        assert_eq!(art, "  \n  ");
    }
}
