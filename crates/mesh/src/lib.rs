//! # meshpath-mesh
//!
//! 2-D mesh topology substrate for the `meshpath` workspace.
//!
//! This crate provides the geometric and structural vocabulary every other
//! crate builds on:
//!
//! * [`Coord`] — signed 2-D coordinates (signed so that virtual corners one
//!   step outside the mesh, which the routing algorithms reason about, are
//!   representable).
//! * [`Dir`] and [`Axis`] — the four mesh directions `+X/-X/+Y/-Y` used by
//!   the paper's labeling and routing rules.
//! * [`Orientation`] — the four axis reflections realizing the paper's
//!   "without loss of generality assume `xs = ys = 0` and `xd, yd >= 0`"
//!   normalization.
//! * [`Mesh`] — mesh dimensions, bounds checks, node indexing and neighbor
//!   arithmetic.
//! * [`Grid`] / [`BitGrid`] — dense per-node storage.
//! * [`Rect`] — the `[x : x', y : y']` rectangular regions of the paper.
//! * [`FaultSet`] — fault injection (uniform and clustered) and queries.
//! * [`connect`] — connectivity among non-faulty nodes (BFS, components).
//!
//! The mesh model follows Section 2 of Jiang & Wu, *On Achieving the
//! Shortest-Path Routing in 2-D Meshes* (IPDPS 2007): an `n x n` 2-D mesh
//! where each interior node has degree 4 and nodes along each dimension are
//! connected as a linear array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connect;
pub mod coord;
pub mod dir;
pub mod faults;
pub mod grid;
pub mod hash;
pub mod mesh;
pub mod orient;
pub mod region;
pub mod render;

pub use connect::{component_count, components, is_connected, largest_component};
pub use coord::Coord;
pub use dir::{Axis, Dir};
pub use faults::{FaultInjection, FaultSet};
pub use grid::{BitGrid, Grid};
pub use hash::{derive_seed, FxBuildHasher, FxHashMap, FxHashSet};
pub use mesh::{Mesh, NodeId};
pub use orient::Orientation;
pub use region::Rect;
