//! Quadrant normalization.
//!
//! The paper fixes, "without loss of generality", `xs = ys = 0` and
//! `xd, yd >= 0`: the destination lies in the `(+X, +Y)` quadrant of the
//! source. For an arbitrary source/destination pair this is realized by
//! reflecting the mesh along zero, one or both axes. [`Orientation`]
//! captures the four reflections; the MCC labeling, boundary construction
//! and routing all operate in *oriented* coordinates and results are mapped
//! back at the edges of the system.

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::dir::Dir;
use crate::mesh::Mesh;

/// One of the four axis reflections of a 2-D mesh.
///
/// `flip_x` mirrors `x -> width-1-x`, `flip_y` mirrors `y -> height-1-y`.
/// The identity orientation is the paper's canonical frame (destination
/// north-east of the source).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Orientation {
    /// Mirror the X axis.
    pub flip_x: bool,
    /// Mirror the Y axis.
    pub flip_y: bool,
}

impl Orientation {
    /// The identity orientation (destination already NE of source).
    pub const IDENTITY: Orientation = Orientation { flip_x: false, flip_y: false };

    /// All four orientations, identity first.
    pub const ALL: [Orientation; 4] = [
        Orientation { flip_x: false, flip_y: false },
        Orientation { flip_x: true, flip_y: false },
        Orientation { flip_x: false, flip_y: true },
        Orientation { flip_x: true, flip_y: true },
    ];

    /// A dense index in `0..4` (identity is 0), for orientation-keyed tables.
    #[inline]
    pub fn index(self) -> usize {
        (self.flip_x as usize) | ((self.flip_y as usize) << 1)
    }

    /// The orientation that maps `d` into the `(+X, +Y)` quadrant of `s`.
    ///
    /// Ties (equal coordinate) resolve to "no flip", so a destination due
    /// east or due north of the source uses the identity orientation.
    pub fn normalizing(s: Coord, d: Coord) -> Orientation {
        Orientation { flip_x: d.x < s.x, flip_y: d.y < s.y }
    }

    /// Applies the reflection to a coordinate.
    ///
    /// The map is an involution: `apply(mesh, apply(mesh, c)) == c`. It is
    /// defined for coordinates outside the mesh as well (virtual corners),
    /// reflecting about the same mesh frame.
    #[inline]
    pub fn apply(self, mesh: &Mesh, c: Coord) -> Coord {
        let x = if self.flip_x { mesh.width() as i32 - 1 - c.x } else { c.x };
        let y = if self.flip_y { mesh.height() as i32 - 1 - c.y } else { c.y };
        Coord::new(x, y)
    }

    /// Applies the reflection to a direction.
    #[inline]
    pub fn apply_dir(self, dir: Dir) -> Dir {
        match dir {
            Dir::PlusX | Dir::MinusX if self.flip_x => dir.opposite(),
            Dir::PlusY | Dir::MinusY if self.flip_y => dir.opposite(),
            _ => dir,
        }
    }

    /// Composition of two reflections (XOR of flips).
    #[inline]
    pub fn compose(self, other: Orientation) -> Orientation {
        Orientation { flip_x: self.flip_x ^ other.flip_x, flip_y: self.flip_y ^ other.flip_y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_involutive() {
        let m = Mesh::new(10, 6);
        for o in Orientation::ALL {
            for c in m.iter() {
                assert_eq!(o.apply(&m, o.apply(&m, c)), c);
            }
            // Also for a virtual coordinate outside the mesh.
            let v = Coord::new(-1, 7);
            assert_eq!(o.apply(&m, o.apply(&m, v)), v);
        }
    }

    #[test]
    fn normalizing_puts_destination_north_east() {
        let m = Mesh::square(9);
        let cases = [
            (Coord::new(4, 4), Coord::new(7, 8)),
            (Coord::new(4, 4), Coord::new(1, 8)),
            (Coord::new(4, 4), Coord::new(7, 0)),
            (Coord::new(4, 4), Coord::new(0, 0)),
            (Coord::new(4, 4), Coord::new(4, 4)),
            (Coord::new(4, 4), Coord::new(4, 0)),
        ];
        for (s, d) in cases {
            let o = Orientation::normalizing(s, d);
            let (s2, d2) = (o.apply(&m, s), o.apply(&m, d));
            assert!(d2.x >= s2.x && d2.y >= s2.y, "{s:?}->{d:?} not normalized");
        }
    }

    #[test]
    fn normalization_preserves_manhattan_distance() {
        let m = Mesh::new(12, 7);
        let s = Coord::new(9, 2);
        let d = Coord::new(3, 6);
        let o = Orientation::normalizing(s, d);
        assert_eq!(o.apply(&m, s).manhattan(o.apply(&m, d)), s.manhattan(d));
    }

    #[test]
    fn apply_dir_flips_only_the_mirrored_axis() {
        let o = Orientation { flip_x: true, flip_y: false };
        assert_eq!(o.apply_dir(Dir::PlusX), Dir::MinusX);
        assert_eq!(o.apply_dir(Dir::MinusX), Dir::PlusX);
        assert_eq!(o.apply_dir(Dir::PlusY), Dir::PlusY);
        assert_eq!(o.apply_dir(Dir::MinusY), Dir::MinusY);
    }

    #[test]
    fn apply_dir_is_consistent_with_apply() {
        let m = Mesh::square(8);
        let u = Coord::new(3, 4);
        for o in Orientation::ALL {
            for d in Dir::ALL {
                let stepped_then_mapped = o.apply(&m, u.step(d));
                let mapped_then_stepped = o.apply(&m, u).step(o.apply_dir(d));
                assert_eq!(stepped_then_mapped, mapped_then_stepped);
            }
        }
    }

    #[test]
    fn index_is_dense_and_stable() {
        let mut seen = [false; 4];
        for o in Orientation::ALL {
            seen[o.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(Orientation::IDENTITY.index(), 0);
    }

    #[test]
    fn compose_is_xor() {
        let a = Orientation { flip_x: true, flip_y: false };
        let b = Orientation { flip_x: true, flip_y: true };
        let c = a.compose(b);
        assert_eq!(c, Orientation { flip_x: false, flip_y: true });
        assert_eq!(a.compose(a), Orientation::IDENTITY);
    }
}
