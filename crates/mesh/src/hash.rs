//! A small FxHash-style hasher.
//!
//! The workspace keys hash maps by small integer ids (MCC ids, node ids).
//! SipHash's HashDoS resistance buys nothing here and costs measurably in
//! the routing hot loops (see the Rust Performance Book's "Hashing"
//! chapter), so we ship the classic Fx multiply-xor hasher. The constant is
//! the one used by rustc; no external crate needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash). Not HashDoS-resistant: use only for
/// internal keys, never attacker-controlled input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add_to_hash(n as u32 as u64);
    }
}

/// SplitMix64 seed derivation: mixes a base seed with up to two stream
/// indices into an independent, well-spread substream seed.
///
/// This is the workspace's one canonical mixer — the experiment
/// harnesses and the traffic simulator all derive their per-task /
/// per-node RNG streams through it, so determinism contracts stay in
/// one place. Pass `0` for an unused stream index.
pub fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    let mut z = base ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Coord, u32> = FxHashMap::default();
        m.insert(Coord::new(1, 2), 10);
        m.insert(Coord::new(3, 4), 20);
        assert_eq!(m[&Coord::new(1, 2)], 10);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }

    #[test]
    fn hashing_is_deterministic_within_process() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"meshpath");
        h2.write(b"meshpath");
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn derive_seed_spreads_and_repeats() {
        assert_eq!(derive_seed(42, 1, 2), derive_seed(42, 1, 2));
        assert_ne!(derive_seed(42, 1, 2), derive_seed(42, 2, 1));
        assert_ne!(derive_seed(42, 1, 2), derive_seed(43, 1, 2));
        // b = 0 degenerates to two-stream mixing, used by the traffic
        // simulator's per-node streams.
        assert_ne!(derive_seed(42, 1, 0), derive_seed(42, 2, 0));
    }

    #[test]
    fn different_inputs_hash_differently() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(1);
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
