//! Fault sets and random fault injection.
//!
//! The paper's simulator "is conducted on a 100x100 mesh with numbers of
//! faulty nodes randomly generated". [`FaultInjection::Uniform`] reproduces
//! that workload; [`FaultInjection::Clustered`] adds a harsher synthetic
//! workload (faults seeded around cluster centers) used by the extended
//! experiments to stress MCC merging.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::grid::BitGrid;
use crate::mesh::{Mesh, NodeId};

/// The set of faulty nodes of a mesh.
///
/// Link faults are handled as in the paper: "link faults can be treated as
/// node faults by disabling the corresponding adjacent nodes", so the model
/// only stores node faults.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultSet {
    faulty: BitGrid,
}

impl FaultSet {
    /// An initially fault-free mesh.
    pub fn none(mesh: Mesh) -> Self {
        FaultSet { faulty: BitGrid::new(mesh) }
    }

    /// Builds a fault set from explicit coordinates.
    ///
    /// # Panics
    /// Panics if any coordinate lies outside the mesh.
    pub fn from_coords(mesh: Mesh, coords: impl IntoIterator<Item = Coord>) -> Self {
        let mut f = FaultSet::none(mesh);
        for c in coords {
            f.inject(c);
        }
        f
    }

    /// Randomly generates `count` distinct faults according to `injection`.
    ///
    /// # Panics
    /// Panics if `count` exceeds the number of mesh nodes.
    pub fn random(mesh: Mesh, count: usize, injection: FaultInjection, rng: &mut impl Rng) -> Self {
        assert!(count <= mesh.len(), "cannot inject {count} faults into {} nodes", mesh.len());
        match injection {
            FaultInjection::Uniform => Self::random_uniform(mesh, count, rng),
            FaultInjection::Clustered { clusters, spread } => {
                Self::random_clustered(mesh, count, clusters, spread, rng)
            }
        }
    }

    fn random_uniform(mesh: Mesh, count: usize, rng: &mut impl Rng) -> Self {
        // Partial Fisher-Yates over the node ids: O(n) memory but exact
        // sampling without replacement, deterministic under a seeded rng.
        // NB: `partial_shuffle` shuffles and returns the *tail* of the
        // slice; reading the head instead silently yields nodes 0..count
        // (i.e. the bottom rows) — a bug class worth this comment.
        let mut ids: Vec<u32> = (0..mesh.len() as u32).collect();
        let (shuffled, _) = ids.partial_shuffle(rng, count);
        let mut f = FaultSet::none(mesh);
        for &id in shuffled.iter() {
            f.faulty.insert_id(NodeId(id));
        }
        f
    }

    fn random_clustered(
        mesh: Mesh,
        count: usize,
        clusters: usize,
        spread: u32,
        rng: &mut impl Rng,
    ) -> Self {
        let mut f = FaultSet::none(mesh);
        let clusters = clusters.max(1);
        let centers: Vec<Coord> = (0..clusters)
            .map(|_| {
                Coord::new(
                    rng.gen_range(0..mesh.width() as i32),
                    rng.gen_range(0..mesh.height() as i32),
                )
            })
            .collect();
        let spread = spread.max(1) as i32;
        let mut injected = 0usize;
        // Rejection-sample around the centers; fall back to uniform when a
        // cluster region saturates so the requested count is always met.
        let mut attempts = 0usize;
        while injected < count {
            attempts += 1;
            let c = if attempts <= count * 32 {
                let center = centers[rng.gen_range(0..centers.len())];
                Coord::new(
                    center.x + rng.gen_range(-spread..=spread),
                    center.y + rng.gen_range(-spread..=spread),
                )
            } else {
                Coord::new(
                    rng.gen_range(0..mesh.width() as i32),
                    rng.gen_range(0..mesh.height() as i32),
                )
            };
            if mesh.contains(c) && f.faulty.insert(c) {
                injected += 1;
            }
        }
        f
    }

    /// The mesh this fault set is defined over.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        self.faulty.mesh()
    }

    /// True when the node at `c` is faulty. Out-of-mesh coordinates are not
    /// faulty (they are simply absent).
    #[inline]
    pub fn is_faulty(&self, c: Coord) -> bool {
        self.faulty.contains(c)
    }

    /// True when `c` is a non-faulty node of the mesh.
    #[inline]
    pub fn is_healthy(&self, c: Coord) -> bool {
        self.mesh().contains(c) && !self.is_faulty(c)
    }

    /// Marks the node at `c` faulty; returns whether it was newly faulty.
    pub fn inject(&mut self, c: Coord) -> bool {
        self.faulty.insert(c)
    }

    /// Repairs the node at `c`; returns whether it was faulty.
    pub fn repair(&mut self, c: Coord) -> bool {
        self.faulty.remove(c)
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn count(&self) -> usize {
        self.faulty.count()
    }

    /// Number of healthy (non-faulty) nodes.
    #[inline]
    pub fn healthy_count(&self) -> usize {
        self.mesh().len() - self.count()
    }

    /// Iterator over the faulty coordinates.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.faulty.iter()
    }

    /// The underlying bit grid (for bulk operations).
    pub fn as_bitgrid(&self) -> &BitGrid {
        &self.faulty
    }
}

/// How random faults are placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultInjection {
    /// Faults drawn uniformly without replacement (the paper's workload).
    Uniform,
    /// Faults drawn around `clusters` random centers with box radius
    /// `spread`, falling back to uniform once clusters saturate.
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Box radius around each center.
        spread: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_injection_is_exact_and_deterministic() {
        let mesh = Mesh::square(20);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = FaultSet::random(mesh, 37, FaultInjection::Uniform, &mut rng1);
        let b = FaultSet::random(mesh, 37, FaultInjection::Uniform, &mut rng2);
        assert_eq!(a.count(), 37);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_injection_spreads_over_the_mesh() {
        // Regression test: a broken sampler that keeps the head of the id
        // array concentrates faults in the bottom rows.
        let mesh = Mesh::square(50);
        let mut rng = StdRng::seed_from_u64(3);
        let f = FaultSet::random(mesh, 100, FaultInjection::Uniform, &mut rng);
        let mut rows = std::collections::HashSet::new();
        let mut cols = std::collections::HashSet::new();
        for c in f.iter() {
            rows.insert(c.y);
            cols.insert(c.x);
        }
        assert!(rows.len() > 25, "faults concentrated in {} rows", rows.len());
        assert!(cols.len() > 25, "faults concentrated in {} cols", cols.len());
    }

    #[test]
    fn clustered_injection_meets_count() {
        let mesh = Mesh::square(30);
        let mut rng = StdRng::seed_from_u64(11);
        let f = FaultSet::random(
            mesh,
            120,
            FaultInjection::Clustered { clusters: 4, spread: 3 },
            &mut rng,
        );
        assert_eq!(f.count(), 120);
        assert!(f.iter().all(|c| mesh.contains(c)));
    }

    #[test]
    fn inject_and_repair() {
        let mesh = Mesh::square(5);
        let mut f = FaultSet::none(mesh);
        assert!(f.inject(Coord::new(2, 2)));
        assert!(!f.inject(Coord::new(2, 2)));
        assert!(f.is_faulty(Coord::new(2, 2)));
        assert!(!f.is_healthy(Coord::new(2, 2)));
        assert!(f.repair(Coord::new(2, 2)));
        assert!(f.is_healthy(Coord::new(2, 2)));
        assert_eq!(f.count(), 0);
    }

    #[test]
    fn out_of_mesh_is_neither_faulty_nor_healthy() {
        let mesh = Mesh::square(4);
        let f = FaultSet::none(mesh);
        let outside = Coord::new(-1, 2);
        assert!(!f.is_faulty(outside));
        assert!(!f.is_healthy(outside));
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn overfull_injection_panics() {
        let mesh = Mesh::square(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FaultSet::random(mesh, 10, FaultInjection::Uniform, &mut rng);
    }
}
