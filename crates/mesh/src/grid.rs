//! Dense per-node storage: `Grid<T>` and the bit-packed `BitGrid`.

use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::mesh::{Mesh, NodeId};

/// A dense map from mesh nodes to values of type `T`, stored row-major.
///
/// Grids deliberately index by [`Coord`] and [`NodeId`] rather than
/// exposing raw offsets; this keeps hot loops allocation-free while staying
/// bounds-checked (per the workspace `forbid(unsafe_code)` policy).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Grid<T> {
    mesh: Mesh,
    cells: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid with every cell set to `fill`.
    pub fn new(mesh: Mesh, fill: T) -> Self {
        Grid { mesh, cells: vec![fill; mesh.len()] }
    }

    /// Resets every cell to `fill`, keeping the allocation.
    pub fn fill(&mut self, fill: T) {
        for c in &mut self.cells {
            *c = fill.clone();
        }
    }
}

impl<T> Grid<T> {
    /// Builds a grid by evaluating `f` at every coordinate (row-major).
    pub fn from_fn(mesh: Mesh, mut f: impl FnMut(Coord) -> T) -> Self {
        let mut cells = Vec::with_capacity(mesh.len());
        for c in mesh.iter() {
            cells.push(f(c));
        }
        Grid { mesh, cells }
    }

    /// The mesh this grid is defined over.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Value at `c`, or `None` when `c` is outside the mesh.
    #[inline]
    pub fn get(&self, c: Coord) -> Option<&T> {
        self.mesh.try_id(c).map(|id| &self.cells[id.index()])
    }

    /// Mutable value at `c`, or `None` when `c` is outside the mesh.
    #[inline]
    pub fn get_mut(&mut self, c: Coord) -> Option<&mut T> {
        self.mesh.try_id(c).map(|id| &mut self.cells[id.index()])
    }

    /// Iterator over `(coordinate, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, &T)> {
        self.mesh.iter().zip(self.cells.iter())
    }

    /// The raw row-major cell slice.
    pub fn as_slice(&self) -> &[T] {
        &self.cells
    }
}

impl<T> Index<Coord> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: Coord) -> &T {
        &self.cells[self.mesh.id(c).index()]
    }
}

impl<T> IndexMut<Coord> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, c: Coord) -> &mut T {
        &mut self.cells[self.mesh.id(c).index()]
    }
}

impl<T> Index<NodeId> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: NodeId) -> &T {
        &self.cells[id.index()]
    }
}

impl<T> IndexMut<NodeId> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.cells[id.index()]
    }
}

/// A bit-packed set of mesh nodes.
///
/// Used for fault sets, visited sets and "nodes involved in propagation"
/// counters, where a full `Grid<bool>` would waste 8x the memory and the
/// popcount-based [`BitGrid::count`] matters for the statistics pipeline.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BitGrid {
    mesh: Mesh,
    words: Vec<u64>,
    ones: usize,
}

impl BitGrid {
    /// Creates an empty bit grid over `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        BitGrid { mesh, words: vec![0; mesh.len().div_ceil(64)], ones: 0 }
    }

    /// The mesh this set is defined over.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// True when the node at `c` is in the set. Out-of-mesh coordinates
    /// report `false`.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        match self.mesh.try_id(c) {
            Some(id) => self.contains_id(id),
            None => false,
        }
    }

    /// True when node `id` is in the set.
    #[inline]
    pub fn contains_id(&self, id: NodeId) -> bool {
        let i = id.index();
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts the node at `c`; returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics (debug) when `c` lies outside the mesh.
    pub fn insert(&mut self, c: Coord) -> bool {
        self.insert_id(self.mesh.id(c))
    }

    /// Inserts node `id`; returns whether it was newly inserted.
    pub fn insert_id(&mut self, id: NodeId) -> bool {
        let i = id.index();
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Removes the node at `c`; returns whether it was present.
    pub fn remove(&mut self, c: Coord) -> bool {
        let i = self.mesh.id(c).index();
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Number of nodes in the set (O(1)).
    #[inline]
    pub fn count(&self) -> usize {
        self.ones
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Removes all nodes, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.ones = 0;
    }

    /// Iterator over the coordinates in the set, in row-major order.
    ///
    /// Skips zero words, so a sweep costs O(nodes / 64 + members) — on a
    /// large, mostly-empty set (the common fault-set shape at scale) this
    /// is ~64x cheaper than testing every node.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |&w| {
                let rest = w & (w - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |w| {
                let id = NodeId((wi as u32) * 64 + w.trailing_zeros());
                self.mesh.coord(id)
            })
        })
    }

    /// In-place union; both grids must share a mesh.
    pub fn union_with(&mut self, other: &BitGrid) {
        assert_eq!(self.mesh, other.mesh, "BitGrid meshes differ");
        let mut ones = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_index_round_trip() {
        let m = Mesh::new(4, 3);
        let mut g = Grid::new(m, 0u32);
        g[Coord::new(2, 1)] = 42;
        assert_eq!(g[Coord::new(2, 1)], 42);
        assert_eq!(g[m.id(Coord::new(2, 1))], 42);
        assert_eq!(g.get(Coord::new(9, 9)), None);
    }

    #[test]
    fn grid_from_fn_row_major() {
        let m = Mesh::new(3, 2);
        let g = Grid::from_fn(m, |c| c.x + 10 * c.y);
        assert_eq!(g.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn bitgrid_insert_remove_count() {
        let m = Mesh::square(10);
        let mut b = BitGrid::new(m);
        assert!(b.insert(Coord::new(3, 3)));
        assert!(!b.insert(Coord::new(3, 3)));
        assert!(b.insert(Coord::new(9, 9)));
        assert_eq!(b.count(), 2);
        assert!(b.remove(Coord::new(3, 3)));
        assert!(!b.remove(Coord::new(3, 3)));
        assert_eq!(b.count(), 1);
        assert!(b.contains(Coord::new(9, 9)));
        assert!(!b.contains(Coord::new(-1, 0)));
    }

    #[test]
    fn bitgrid_union() {
        let m = Mesh::square(8);
        let mut a = BitGrid::new(m);
        let mut b = BitGrid::new(m);
        a.insert(Coord::new(0, 0));
        a.insert(Coord::new(1, 1));
        b.insert(Coord::new(1, 1));
        b.insert(Coord::new(2, 2));
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        assert!(a.contains(Coord::new(2, 2)));
    }

    #[test]
    fn bitgrid_iter_matches_contains() {
        let m = Mesh::new(5, 7);
        let mut b = BitGrid::new(m);
        for c in [Coord::new(0, 6), Coord::new(4, 0), Coord::new(2, 3)] {
            b.insert(c);
        }
        let collected: Vec<_> = b.iter().collect();
        assert_eq!(collected.len(), 3);
        assert!(collected.windows(2).all(|w| w[0] < w[1] || w[0].y < w[1].y));
    }
}
