//! Signed 2-D coordinates and the Manhattan metric.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

use crate::dir::Dir;

/// A node address `(x, y)` in a 2-D mesh.
///
/// Coordinates are signed (`i32`) even though mesh nodes live in
/// `[0, n) x [0, n)`: the routing algorithms of the paper reason about
/// *virtual corners* of fault regions that can lie one step outside the
/// mesh (e.g. the initialization corner of an MCC touching the mesh edge),
/// and signed arithmetic keeps those expressions total.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Position along the X dimension.
    pub x: i32,
    /// Position along the Y dimension.
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate from its two components.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Coord { x, y }
    }

    /// The Manhattan (geographic) distance `|xu - xv| + |yu - yv|`,
    /// written `M(u, v)` in the paper.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The neighbor of this coordinate in direction `dir`
    /// (may fall outside any particular mesh).
    #[inline]
    pub fn step(self, dir: Dir) -> Coord {
        let (dx, dy) = dir.offset();
        Coord::new(self.x + dx, self.y + dy)
    }

    /// All four neighbor coordinates, in `[+X, -X, +Y, -Y]` order.
    #[inline]
    pub fn neighbors(self) -> [Coord; 4] {
        [
            self.step(Dir::PlusX),
            self.step(Dir::MinusX),
            self.step(Dir::PlusY),
            self.step(Dir::MinusY),
        ]
    }

    /// The direction of a single-step move from `self` to `to`, if the two
    /// coordinates are mesh neighbors.
    pub fn dir_to(self, to: Coord) -> Option<Dir> {
        match (to.x - self.x, to.y - self.y) {
            (1, 0) => Some(Dir::PlusX),
            (-1, 0) => Some(Dir::MinusX),
            (0, 1) => Some(Dir::PlusY),
            (0, -1) => Some(Dir::MinusY),
            _ => None,
        }
    }

    /// True when `other` is one of the four mesh neighbors of `self`.
    #[inline]
    pub fn is_neighbor(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl Add<(i32, i32)> for Coord {
    type Output = Coord;
    #[inline]
    fn add(self, (dx, dy): (i32, i32)) -> Coord {
        Coord::new(self.x + dx, self.y + dy)
    }
}

impl Sub for Coord {
    type Output = (i32, i32);
    #[inline]
    fn sub(self, rhs: Coord) -> (i32, i32) {
        (self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Coord {
    #[inline]
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_basics() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 4);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(b.manhattan(a), 7);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn manhattan_handles_negative_coordinates() {
        let a = Coord::new(-2, -3);
        let b = Coord::new(1, 1);
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn step_and_dir_to_are_inverse() {
        let u = Coord::new(5, 5);
        for dir in Dir::ALL {
            let v = u.step(dir);
            assert_eq!(u.dir_to(v), Some(dir));
            assert_eq!(u.manhattan(v), 1);
        }
    }

    #[test]
    fn dir_to_rejects_non_neighbors() {
        let u = Coord::new(0, 0);
        assert_eq!(u.dir_to(Coord::new(1, 1)), None);
        assert_eq!(u.dir_to(Coord::new(2, 0)), None);
        assert_eq!(u.dir_to(u), None);
    }

    #[test]
    fn neighbors_order_matches_paper_convention() {
        let u = Coord::new(2, 2);
        let n = u.neighbors();
        assert_eq!(n[0], Coord::new(3, 2)); // +X
        assert_eq!(n[1], Coord::new(1, 2)); // -X
        assert_eq!(n[2], Coord::new(2, 3)); // +Y
        assert_eq!(n[3], Coord::new(2, 1)); // -Y
    }
}
