//! Mesh dimensions, node indexing and neighbor arithmetic.

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::dir::Dir;

/// A dense node identifier: `id = y * width + x`.
///
/// `NodeId` is a `u32` to keep per-node tables compact (a `100 x 100` mesh
/// has 10 000 nodes; `u32` supports meshes up to `65536 x 65536`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dimensions of a 2-D mesh (`width x height` nodes).
///
/// The paper uses square `n x n` meshes; rectangular meshes are supported
/// because nothing in the algorithms requires squareness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mesh {
    width: u32,
    height: u32,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero or if the node count would
    /// overflow `u32`.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            (width as u64) * (height as u64) <= u32::MAX as u64,
            "mesh too large for u32 node ids"
        );
        Mesh { width, height }
    }

    /// Creates the square `n x n` mesh used throughout the paper.
    pub fn square(n: u32) -> Self {
        Mesh::new(n, n)
    }

    /// Mesh width (number of columns).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (number of rows).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Always false: meshes have at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when `c` addresses a node of this mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= 0 && c.y >= 0 && (c.x as u32) < self.width && (c.y as u32) < self.height
    }

    /// Maps an in-mesh coordinate to its dense id.
    ///
    /// # Panics
    /// Panics (debug) if `c` is outside the mesh.
    #[inline]
    pub fn id(&self, c: Coord) -> NodeId {
        debug_assert!(self.contains(c), "coordinate {c:?} outside {self:?}");
        NodeId((c.y as u32) * self.width + (c.x as u32))
    }

    /// Maps an in-mesh coordinate to its dense id, or `None` when outside.
    #[inline]
    pub fn try_id(&self, c: Coord) -> Option<NodeId> {
        self.contains(c).then(|| self.id(c))
    }

    /// Inverse of [`Mesh::id`].
    #[inline]
    pub fn coord(&self, id: NodeId) -> Coord {
        let x = id.0 % self.width;
        let y = id.0 / self.width;
        debug_assert!(y < self.height, "node id {id:?} outside {self:?}");
        Coord::new(x as i32, y as i32)
    }

    /// The in-mesh neighbor of `c` in direction `dir`, if any.
    #[inline]
    pub fn neighbor(&self, c: Coord, dir: Dir) -> Option<Coord> {
        let n = c.step(dir);
        self.contains(n).then_some(n)
    }

    /// Iterator over the in-mesh neighbors of `c` (2 to 4 of them).
    pub fn neighbors(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        Dir::ALL.into_iter().filter_map(move |d| self.neighbor(c, d))
    }

    /// Iterator over all node coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width as i32, self.height as i32);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Iterator over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Number of interior degree-4 nodes (useful sanity metric in tests).
    pub fn interior_len(&self) -> usize {
        if self.width < 3 || self.height < 3 {
            0
        } else {
            ((self.width - 2) as usize) * ((self.height - 2) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let m = Mesh::new(7, 5);
        for c in m.iter() {
            assert_eq!(m.coord(m.id(c)), c);
        }
        assert_eq!(m.iter().count(), m.len());
    }

    #[test]
    fn contains_rejects_out_of_bounds() {
        let m = Mesh::square(4);
        assert!(m.contains(Coord::new(0, 0)));
        assert!(m.contains(Coord::new(3, 3)));
        assert!(!m.contains(Coord::new(-1, 0)));
        assert!(!m.contains(Coord::new(0, 4)));
        assert!(!m.contains(Coord::new(4, 0)));
    }

    #[test]
    fn corner_nodes_have_two_neighbors() {
        let m = Mesh::square(5);
        assert_eq!(m.neighbors(Coord::new(0, 0)).count(), 2);
        assert_eq!(m.neighbors(Coord::new(4, 4)).count(), 2);
        assert_eq!(m.neighbors(Coord::new(0, 2)).count(), 3);
        assert_eq!(m.neighbors(Coord::new(2, 2)).count(), 4);
    }

    #[test]
    fn interior_count() {
        assert_eq!(Mesh::square(5).interior_len(), 9);
        assert_eq!(Mesh::new(2, 9).interior_len(), 0);
        assert_eq!(Mesh::square(100).interior_len(), 98 * 98);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Mesh::new(0, 3);
    }
}
