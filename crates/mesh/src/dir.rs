//! The four mesh directions and the two axes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two dimensions of a 2-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Axis {
    /// The X dimension.
    X,
    /// The Y dimension.
    Y,
}

impl Axis {
    /// The other axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }

    /// The positive direction along this axis.
    #[inline]
    pub fn plus(self) -> Dir {
        match self {
            Axis::X => Dir::PlusX,
            Axis::Y => Dir::PlusY,
        }
    }

    /// The negative direction along this axis.
    #[inline]
    pub fn minus(self) -> Dir {
        match self {
            Axis::X => Dir::MinusX,
            Axis::Y => Dir::MinusY,
        }
    }
}

/// A unit move in the mesh: `+X`, `-X`, `+Y` or `-Y`.
///
/// The paper's labeling rules and routing decisions are all phrased in
/// terms of these four directions (`(x+1, y)` is the `+X` neighbor, and so
/// on).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Towards increasing `x`.
    PlusX,
    /// Towards decreasing `x`.
    MinusX,
    /// Towards increasing `y`.
    PlusY,
    /// Towards decreasing `y`.
    MinusY,
}

impl Dir {
    /// All four directions, in `[+X, -X, +Y, -Y]` order.
    pub const ALL: [Dir; 4] = [Dir::PlusX, Dir::MinusX, Dir::PlusY, Dir::MinusY];

    /// The coordinate offset `(dx, dy)` of a unit step in this direction.
    #[inline]
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Dir::PlusX => (1, 0),
            Dir::MinusX => (-1, 0),
            Dir::PlusY => (0, 1),
            Dir::MinusY => (0, -1),
        }
    }

    /// The opposite direction.
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::PlusX => Dir::MinusX,
            Dir::MinusX => Dir::PlusX,
            Dir::PlusY => Dir::MinusY,
            Dir::MinusY => Dir::PlusY,
        }
    }

    /// The axis this direction moves along.
    #[inline]
    pub const fn axis(self) -> Axis {
        match self {
            Dir::PlusX | Dir::MinusX => Axis::X,
            Dir::PlusY | Dir::MinusY => Axis::Y,
        }
    }

    /// Whether this is a positive (`+X`/`+Y`) direction.
    #[inline]
    pub const fn is_positive(self) -> bool {
        matches!(self, Dir::PlusX | Dir::PlusY)
    }

    /// The direction obtained by a 90-degree clockwise turn, where
    /// "clockwise" is in the standard mathematical plane with `+X` east and
    /// `+Y` north (so clockwise of north is east).
    #[inline]
    pub const fn clockwise(self) -> Dir {
        match self {
            Dir::PlusY => Dir::PlusX,
            Dir::PlusX => Dir::MinusY,
            Dir::MinusY => Dir::MinusX,
            Dir::MinusX => Dir::PlusY,
        }
    }

    /// The direction obtained by a 90-degree counter-clockwise turn.
    #[inline]
    pub const fn counter_clockwise(self) -> Dir {
        match self {
            Dir::PlusX => Dir::PlusY,
            Dir::PlusY => Dir::MinusX,
            Dir::MinusX => Dir::MinusY,
            Dir::MinusY => Dir::PlusX,
        }
    }
}

impl fmt::Debug for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::PlusX => "+X",
            Dir::MinusX => "-X",
            Dir::PlusY => "+Y",
            Dir::MinusY => "-Y",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites_are_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn clockwise_cycles_in_four() {
        for d in Dir::ALL {
            assert_eq!(d.clockwise().clockwise().clockwise().clockwise(), d);
            assert_eq!(d.clockwise().clockwise(), d.opposite());
        }
    }

    #[test]
    fn counter_clockwise_inverts_clockwise() {
        for d in Dir::ALL {
            assert_eq!(d.clockwise().counter_clockwise(), d);
            assert_eq!(d.counter_clockwise().clockwise(), d);
        }
    }

    #[test]
    fn axis_round_trip() {
        assert_eq!(Axis::X.plus(), Dir::PlusX);
        assert_eq!(Axis::Y.minus(), Dir::MinusY);
        for d in Dir::ALL {
            if d.is_positive() {
                assert_eq!(d.axis().plus(), d);
            } else {
                assert_eq!(d.axis().minus(), d);
            }
        }
    }

    #[test]
    fn offsets_are_unit_steps() {
        for d in Dir::ALL {
            let (dx, dy) = d.offset();
            assert_eq!(dx.abs() + dy.abs(), 1);
        }
    }
}
