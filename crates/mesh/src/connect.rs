//! Connectivity of the healthy sub-mesh.
//!
//! The paper assumes "(a) the entire network is connected" and its
//! simulator "only conduct\[s\] the test in the cases when the entire mesh is
//! not disconnected by faults". These helpers implement that filter and the
//! component statistics used by the experiment harness.

use crate::coord::Coord;
use crate::faults::FaultSet;
use crate::grid::Grid;

/// Labels every healthy node with a component id (`u32::MAX` marks faulty
/// nodes). Returns the label grid and the number of components.
pub fn components(faults: &FaultSet) -> (Grid<u32>, usize) {
    let mesh = *faults.mesh();
    const UNSET: u32 = u32::MAX;
    let mut labels = Grid::new(mesh, UNSET);
    let mut next = 0u32;
    let mut queue: Vec<Coord> = Vec::new();
    for start in mesh.iter() {
        if faults.is_faulty(start) || labels[start] != UNSET {
            continue;
        }
        labels[start] = next;
        queue.push(start);
        while let Some(u) = queue.pop() {
            for v in mesh.neighbors(u) {
                if !faults.is_faulty(v) && labels[v] == UNSET {
                    labels[v] = next;
                    queue.push(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Number of connected components among healthy nodes.
pub fn component_count(faults: &FaultSet) -> usize {
    components(faults).1
}

/// True when all healthy nodes form a single connected component (a
/// fault-saturated mesh with zero healthy nodes counts as connected).
pub fn is_connected(faults: &FaultSet) -> bool {
    component_count(faults) <= 1
}

/// Size of the largest healthy component (0 when all nodes are faulty).
pub fn largest_component(faults: &FaultSet) -> usize {
    let (labels, n) = components(faults);
    let mut sizes = vec![0usize; n];
    for (_, &l) in labels.iter() {
        if l != u32::MAX {
            sizes[l as usize] += 1;
        }
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;

    #[test]
    fn fault_free_mesh_is_one_component() {
        let f = FaultSet::none(Mesh::square(6));
        assert!(is_connected(&f));
        assert_eq!(component_count(&f), 1);
        assert_eq!(largest_component(&f), 36);
    }

    #[test]
    fn fault_wall_splits_the_mesh() {
        let mesh = Mesh::square(5);
        // Vertical wall at x = 2 splits left from right.
        let f = FaultSet::from_coords(mesh, (0..5).map(|y| Coord::new(2, y)));
        assert!(!is_connected(&f));
        assert_eq!(component_count(&f), 2);
        assert_eq!(largest_component(&f), 10);
    }

    #[test]
    fn single_fault_keeps_connectivity() {
        let mesh = Mesh::square(5);
        let f = FaultSet::from_coords(mesh, [Coord::new(2, 2)]);
        assert!(is_connected(&f));
        assert_eq!(largest_component(&f), 24);
    }

    #[test]
    fn isolated_corner() {
        let mesh = Mesh::square(4);
        // Cut off the (0,0) corner with faults at (1,0) and (0,1).
        let f = FaultSet::from_coords(mesh, [Coord::new(1, 0), Coord::new(0, 1)]);
        assert_eq!(component_count(&f), 2);
        assert_eq!(largest_component(&f), 13);
    }

    #[test]
    fn fully_faulty_mesh_counts_as_connected() {
        let mesh = Mesh::square(2);
        let f = FaultSet::from_coords(mesh, mesh.iter());
        assert!(is_connected(&f));
        assert_eq!(component_count(&f), 0);
        assert_eq!(largest_component(&f), 0);
    }
}
