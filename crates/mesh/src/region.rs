//! Rectangular regions `[x : x', y : y']`.

use serde::{Deserialize, Serialize};

use crate::coord::Coord;

/// The paper's rectangular region `[x0 : x1, y0 : y1]` with the four
/// vertexes `(x0,y0)`, `(x0,y1)`, `(x1,y1)`, `(x1,y0)`.
///
/// Degenerate rectangles (`x0 == x1` or `y0 == y1`) represent line
/// segments, matching the paper's notation for boundary lines. Bounds are
/// inclusive.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x (inclusive).
    pub x0: i32,
    /// Largest x (inclusive).
    pub x1: i32,
    /// Smallest y (inclusive).
    pub y0: i32,
    /// Largest y (inclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rectangle, normalizing the corner order.
    pub fn new(a: Coord, b: Coord) -> Self {
        Rect { x0: a.x.min(b.x), x1: a.x.max(b.x), y0: a.y.min(b.y), y1: a.y.max(b.y) }
    }

    /// The rectangle spanned by a single point.
    pub fn point(c: Coord) -> Self {
        Rect::new(c, c)
    }

    /// True when `c` lies inside the rectangle (inclusive bounds).
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        self.x0 <= c.x && c.x <= self.x1 && self.y0 <= c.y && c.y <= self.y1
    }

    /// Grows the rectangle to include `c`.
    pub fn expand(&mut self, c: Coord) {
        self.x0 = self.x0.min(c.x);
        self.x1 = self.x1.max(c.x);
        self.y0 = self.y0.min(c.y);
        self.y1 = self.y1.max(c.y);
    }

    /// The intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            x1: self.x1.min(other.x1),
            y0: self.y0.max(other.y0),
            y1: self.y1.min(other.y1),
        };
        (r.x0 <= r.x1 && r.y0 <= r.y1).then_some(r)
    }

    /// Width in nodes (inclusive bounds).
    #[inline]
    pub fn width(&self) -> u32 {
        (self.x1 - self.x0 + 1) as u32
    }

    /// Height in nodes (inclusive bounds).
    #[inline]
    pub fn height(&self) -> u32 {
        (self.y1 - self.y0 + 1) as u32
    }

    /// Number of nodes covered.
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// Iterator over all coordinates in the rectangle, row-major.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord::new(x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Coord::new(5, 1), Coord::new(2, 4));
        assert_eq!(r, Rect { x0: 2, x1: 5, y0: 1, y1: 4 });
        assert!(r.contains(Coord::new(3, 2)));
        assert!(!r.contains(Coord::new(6, 2)));
    }

    #[test]
    fn degenerate_rect_is_a_segment() {
        let seg = Rect::new(Coord::new(3, 0), Coord::new(3, 9));
        assert_eq!(seg.width(), 1);
        assert_eq!(seg.height(), 10);
        assert_eq!(seg.area(), 10);
        assert!(seg.contains(Coord::new(3, 5)));
        assert!(!seg.contains(Coord::new(4, 5)));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Rect::new(Coord::new(0, 0), Coord::new(2, 2));
        let b = Rect::new(Coord::new(3, 3), Coord::new(5, 5));
        assert_eq!(a.intersect(&b), None);
        let c = Rect::new(Coord::new(2, 2), Coord::new(4, 4));
        assert_eq!(a.intersect(&c), Some(Rect::point(Coord::new(2, 2))));
    }

    #[test]
    fn iter_covers_area() {
        let r = Rect::new(Coord::new(1, 1), Coord::new(3, 2));
        assert_eq!(r.iter().count() as u64, r.area());
        assert_eq!(r.area(), 6);
    }

    #[test]
    fn expand_grows_bounds() {
        let mut r = Rect::point(Coord::new(2, 2));
        r.expand(Coord::new(0, 5));
        assert_eq!(r, Rect { x0: 0, x1: 2, y0: 2, y1: 5 });
    }
}
