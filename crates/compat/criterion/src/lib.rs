//! Offline minimal subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the interface its benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! wall-clock measurement loop:
//!
//! * each benchmark is warmed up once, then timed over batches whose
//!   size auto-scales so a sample takes at least ~1 ms;
//! * the median per-iteration time over the samples is reported as
//!   `name ... time: <t>` on stdout.
//!
//! No statistical analysis, plots or baselines — just honest numbers so
//! `cargo bench` runs to completion and stays comparable run-to-run on
//! the same machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (criterion's default is 100;
/// the stub keeps runs quick).
const DEFAULT_SAMPLES: usize = 12;

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench ... -- --test` runs every benchmark once without
        // timing — real criterion's smoke mode, used by CI to keep the
        // benches from rotting without paying for measurements.
        Criterion { samples: DEFAULT_SAMPLES, test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    /// Sets the sample count for subsequently registered benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Forces smoke mode (each routine runs once, untimed) on or off —
    /// what `--test` on the command line sets.
    pub fn test_mode(&mut self, on: bool) -> &mut Self {
        self.test_mode = on;
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.samples, self.test_mode, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.samples, self.test_mode, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier (name, or name-from-parameter).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion into a [`BenchmarkId`] (strings and ids both accepted).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations per sample, auto-scaled by the driver.
    batch: u64,
    /// Measured duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `batch` times back-to-back.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, samples: usize, test_mode: bool, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher { batch: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{name:<50} ok (test mode: 1 iteration, untimed)");
        return;
    }
    // Warm-up + batch sizing: grow the batch until one sample costs at
    // least ~1 ms so short routines are measured above timer noise.
    let mut batch = 1u64;
    loop {
        let mut b = Bencher { batch, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!("{name:<50} time: [{} {} {}]", format_time(lo), format_time(median), format_time(hi));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.sample_size(2).test_mode(false);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion::default();
        c.test_mode(true);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode is a single untimed iteration");
        let mut g = c.benchmark_group("g");
        let mut grp_runs = 0u64;
        g.bench_function("one", |b| b.iter(|| grp_runs += 1));
        g.finish();
        assert_eq!(grp_runs, 1, "groups inherit test mode");
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| b.iter(|| hits += x));
        g.bench_function("plain", |b| b.iter(|| ()));
        g.finish();
        assert!(hits >= 7);
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}
