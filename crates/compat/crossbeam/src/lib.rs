//! Offline std-backed subset of the
//! [`crossbeam`](https://crates.io/crates/crossbeam) API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the two pieces it uses:
//!
//! * [`channel::unbounded`] — a multi-producer **multi-consumer** FIFO
//!   (std's `mpsc` receiver is single-consumer, so this is a small
//!   `Mutex<VecDeque>` + `Condvar` queue);
//! * [`thread::scope`] — scoped spawning, forwarded to
//!   `std::thread::scope` (stable since Rust 1.63), with crossbeam's
//!   `Result`-returning signature.
//!
//! Semantics relied upon by the workspace: `recv` blocks until a value
//! is available and errors once every sender is dropped *and* the queue
//! drained; worker panics surface as an `Err` from `scope`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Unbounded MPMC FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        /// Queue plus the number of live senders.
        state: Mutex<(VecDeque<T>, usize)>,
        ready: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (consumers compete for values).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel has no live receivers (never reported by this stub's
    /// `send`, which cannot observe receiver counts without weakening
    /// the queue; kept for signature compatibility).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders dropped and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a [`Receiver::try_recv`] returned no value (crossbeam's
    /// shape, kept so the real crate can be swapped back in).
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty but senders remain.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared =
            Arc::new(Shared { state: Mutex::new((VecDeque::new(), 1)), ready: Condvar::new() });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; wakes one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.0.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").1 += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.1 -= 1;
            let disconnected = state.1 == 0;
            drop(state);
            if disconnected {
                // Wake every blocked receiver so it can observe the
                // disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.0.pop_front() {
                    return Ok(v);
                }
                if state.1 == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking pop.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            match state.0.pop_front() {
                Some(v) => Ok(v),
                None if state.1 == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning `scope`.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked child thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so
        /// workers can spawn siblings), exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; joins all spawned threads before
    /// returning. A child panic is reported as `Err` (crossbeam
    /// semantics) rather than propagated.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::thread;

    #[test]
    fn mpmc_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn multi_consumer_work_queue() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (tx_res, rx_res) = channel::unbounded::<usize>();
        thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let tx_res = tx_res.clone();
                scope.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        tx_res.send(v).unwrap();
                    }
                });
            }
            drop(tx_res);
        })
        .expect("no worker panicked");
        let mut got: Vec<usize> = std::iter::from_fn(|| rx_res.try_recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
