//! Offline stand-in for the
//! [`arc-swap`](https://crates.io/crates/arc-swap) crate: an atomic
//! `Arc<T>` publication slot plus a read-side [`cache::Cache`] that
//! makes steady-state loads a **single atomic load** — the RCU
//! primitive behind the workspace's lock-free route-service read path.
//!
//! The build environment has no access to crates.io, and a truly
//! lock-free `load_full` needs hazard pointers or deferred reclamation
//! (what the real crate's "debt" machinery does) — out of scope for a
//! `forbid(unsafe_code)` stand-in. This subset gets the same *scaling*
//! behavior with safe code by splitting the read path in two:
//!
//! * [`ArcSwap::load_full`] takes a `Mutex` for just the `Arc` clone —
//!   correct from any thread, but each call is two contended RMWs
//!   (lock word) plus one more (the `Arc` refcount);
//! * [`cache::Cache::load`] keeps a thread-owned clone and revalidates
//!   it against the slot's sequence counter: while the slot is
//!   unchanged, a load is **one `Acquire` load of a read-mostly cache
//!   line and zero shared-line writes**, so any number of reader
//!   threads scale linearly. Only the load that observes a new
//!   sequence number touches the mutex (once per published value per
//!   thread).
//!
//! ## Memory-ordering contract
//!
//! [`store`](ArcSwap::store) replaces the slot and bumps the sequence
//! counter (`Release`) *while holding the writer mutex*, so the counter
//! and the slot always change together. A reader that `Acquire`-loads
//! the counter and sees a new value takes the mutex to refresh, and the
//! mutex acquisition orders the slot read after the slot write. A
//! reader whose cached sequence still matches uses its own earlier
//! clone — valid without synchronization because the thread owns that
//! `Arc` reference. Staleness is bounded by the race window of a single
//! load: the counter is re-checked on **every** `Cache::load`, so a
//! cached value is used at most one publication behind a concurrent
//! `store`, which is ordinary RCU semantics.
//!
//! Deliberate API divergences from the real crate (adapted at the one
//! call site when the registry dependency lands): [`cache::Cache`] is a
//! plain value that takes the [`ArcSwap`] as a `load` argument instead
//! of owning a handle to it, and `load` returns `&Arc<T>` rather than a
//! guard type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomic `Arc<T>` slot: writers [`store`](ArcSwap::store) new
/// values without ever blocking readers that go through a
/// [`cache::Cache`]; readers either clone the current value
/// ([`load_full`](ArcSwap::load_full)) or revalidate a thread-owned
/// clone against [`seq`](ArcSwap::seq).
#[derive(Debug)]
pub struct ArcSwap<T> {
    /// Bumped (under the mutex, `Release`) once per `store`/`swap`.
    seq: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// A slot holding `initial` (sequence number 0).
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap { seq: AtomicU64::new(0), slot: Mutex::new(initial) }
    }

    /// A slot holding `Arc::new(value)`.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// The slot's sequence number (`Acquire`): changes exactly when the
    /// stored value changes. [`cache::Cache`] compares against this to
    /// skip the mutex on the hot path.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Clones the current value (brief mutex hold — the clone only).
    pub fn load_full(&self) -> Arc<T> {
        self.slot.lock().expect("arc-swap slot poisoned").clone()
    }

    /// Publishes `new`, dropping the previous value.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the previous value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.lock().expect("arc-swap slot poisoned");
        let old = std::mem::replace(&mut *slot, new);
        // Bumped before unlock so (seq, slot) can never be observed
        // torn by a refresh, which reads both under this mutex.
        self.seq.fetch_add(1, Ordering::Release);
        old
    }

    /// The current value and sequence number, read consistently (used
    /// by [`cache::Cache`] refreshes).
    fn load_with_seq(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().expect("arc-swap slot poisoned");
        let value = slot.clone();
        let seq = self.seq.load(Ordering::Acquire);
        (value, seq)
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

pub mod cache {
    //! The read-side cache: one per reader thread (or per reader
    //! struct), revalidated on every load.

    use super::{Arc, ArcSwap};

    /// A thread-owned clone of an [`ArcSwap`]'s value plus the sequence
    /// number it was taken at. [`load`](Cache::load) returns the clone
    /// without touching any shared mutable state while the slot is
    /// unchanged.
    #[derive(Debug, Default)]
    pub struct Cache<T> {
        cached: Option<(u64, Arc<T>)>,
    }

    impl<T> Cache<T> {
        /// An empty cache (the first load refreshes).
        pub fn new() -> Self {
            Cache { cached: None }
        }

        /// The current value of `swap`: one `Acquire` sequence load
        /// when the cache is fresh, a brief mutex refresh when `swap`
        /// has published since the last load.
        pub fn load<'a>(&'a mut self, swap: &ArcSwap<T>) -> &'a Arc<T> {
            let seq = swap.seq();
            let fresh = matches!(&self.cached, Some((cached_seq, _)) if *cached_seq == seq);
            if !fresh {
                let (value, seq) = swap.load_with_seq();
                self.cached = Some((seq, value));
            }
            &self.cached.as_ref().expect("cache was just filled").1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::cache::Cache;
    use super::*;

    #[test]
    fn store_changes_what_loads_see() {
        let slot = ArcSwap::from_pointee(1u32);
        assert_eq!(*slot.load_full(), 1);
        assert_eq!(slot.seq(), 0);
        slot.store(Arc::new(2));
        assert_eq!(*slot.load_full(), 2);
        assert_eq!(slot.seq(), 1);
        assert_eq!(*slot.swap(Arc::new(3)), 2, "swap returns the old value");
        assert_eq!(*slot.load_full(), 3);
    }

    #[test]
    fn cache_revalidates_on_every_load() {
        let slot = ArcSwap::from_pointee(10u32);
        let mut cache = Cache::new();
        assert_eq!(**cache.load(&slot), 10);
        // A fresh cache skips the refresh: the Arc address is stable.
        let first = Arc::as_ptr(cache.load(&slot));
        assert_eq!(Arc::as_ptr(cache.load(&slot)), first);
        slot.store(Arc::new(11));
        assert_eq!(**cache.load(&slot), 11, "a publish invalidates the cache");
    }

    #[test]
    fn old_values_stay_alive_while_cached() {
        let slot = ArcSwap::from_pointee(String::from("epoch-0"));
        let mut cache = Cache::new();
        let held = Arc::clone(cache.load(&slot));
        slot.store(Arc::new(String::from("epoch-1")));
        assert_eq!(*held, "epoch-0", "readers keep their snapshot");
        assert_eq!(**cache.load(&slot), "epoch-1");
    }

    #[test]
    fn concurrent_readers_see_only_published_values() {
        let slot = Arc::new(ArcSwap::from_pointee(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let slot = &slot;
                scope.spawn(move || {
                    let mut cache = Cache::new();
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = **cache.load(slot);
                        assert!(v >= last, "published values are monotone: {v} < {last}");
                        last = v;
                    }
                });
            }
            scope.spawn(|| {
                for v in 1..=100u64 {
                    slot.store(Arc::new(v));
                }
            });
        });
        assert_eq!(**Cache::new().load(&slot), 100);
    }
}
