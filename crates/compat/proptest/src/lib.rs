//! Offline minimal subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the interface its property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`Just`], [`collection::hash_set`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the seed-derived values
//!   via the assertion message only;
//! * **fixed seeding** — cases derive deterministically from the test
//!   function's name, so failures reproduce exactly and CI is stable;
//! * assertions map to `assert!`/`assert_eq!` (panic, not `Err`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Run-count configuration (`with_cases` subset).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `HashSet`s with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` whose size is drawn from `size` and whose elements
    /// come from `element`. When the element domain is too small to
    /// reach the drawn size, the set stays smaller (bounded attempts) —
    /// same contract as proptest, which treats the size as a target.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 16 + 16 {
                attempts += 1;
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// The common imports, proptest-style.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Declares property tests: each `fn name(pat in strategy) { body }`
/// becomes a `#[test]` running `body` over `cases` generated values.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strat:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::__SeedableRng as _;
                let cfg: $crate::ProptestConfig = $cfg;
                let strat = $strat;
                let mut rng =
                    $crate::__StdRng::seed_from_u64($crate::seed_for(stringify!($name)));
                for case in 0..cfg.cases {
                    let $pat = $crate::Strategy::generate(&strat, &mut rng);
                    let _ = case;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strat:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($pat in $strat) $body
            )*
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seed_for;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0i32..10, 5u32..9)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..5).prop_flat_map(|n| {
            collection::hash_set(0usize..n * 10, 0..n).prop_map(move |s| (n, s))
        })) {
            let (n, set) = v;
            prop_assert!(set.len() < n, "|set| = {} must stay below {n}", set.len());
        }

        #[test]
        fn just_is_constant(x in (Just(7u8), 0u8..3)) {
            prop_assert_eq!(x.0, 7);
        }
    }
}
