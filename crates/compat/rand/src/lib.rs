//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *interface* it actually uses — [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::partial_shuffle`] — backed by a small, fast,
//! deterministic generator (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism is the only contract the workspace relies on: every
//! experiment derives its streams from explicit seeds and compares
//! run-to-run, never against upstream `rand` output. Swapping the real
//! `rand` back in therefore only changes *which* reproducible stream the
//! experiments consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness plus the sampling helpers the workspace uses.
///
/// Mirrors the parts of `rand::Rng` (and the underlying `RngCore`) that
/// the workspace calls. `next_u64` is the one required method.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        gen_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn gen_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection zone keeps the sample exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, bound);
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // `span == 0` means the full u64 domain (only for 64-bit
                // types spanning everything): take the raw draw.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + gen_f64(rng) * (self.end - self.start)
    }
}

/// Construction of generators from seeds (`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12); the workspace only
    /// requires a deterministic, well-mixed stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling and shuffling (`SliceRandom` subset).
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles `amount` randomly chosen elements into the **tail**
        /// of the slice and returns `(shuffled_tail, rest_head)` —
        /// matching `rand 0.8` semantics, where reading the head instead
        /// of the returned tail is a classic bug.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            // Draw into positions len-1, len-2, ... from the shrinking
            // prefix, exactly as rand's partial Fisher-Yates does.
            for i in (len - amount..len).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
            let (head, tail) = self.split_at_mut(len - amount);
            (tail, head)
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            let len = self.len();
            let _ = self.partial_shuffle(rng, len);
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
    }

    #[test]
    fn partial_shuffle_returns_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        let (shuffled, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(shuffled.len(), 10);
        assert_eq!(rest.len(), 90);
        // The selection must not systematically be the head values.
        let mut all: Vec<u32> = shuffled.to_vec();
        all.extend_from_slice(rest);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_is_unbiased_enough() {
        // Each of 20 values should be selected roughly 1000 * 5/20 times.
        let mut counts = [0u32; 20];
        for seed in 0..1_000 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..20).collect();
            let (sel, _) = v.partial_shuffle(&mut rng, 5);
            for &s in sel.iter() {
                counts[s] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..=350).contains(&c), "value {i} selected {c} times");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [7u8];
        assert_eq!(v.choose(&mut rng), Some(&7));
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(w, sorted, "a 50-element shuffle virtually never is the identity");
    }
}
