//! Offline no-op subset of the [`serde`](https://serde.rs) derive
//! interface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *interface* the code uses: `#[derive(Serialize,
//! Deserialize)]` markers. The derives expand to nothing — no trait
//! impls are generated and nothing in the workspace performs actual
//! serde serialization (the analysis binaries emit aligned text tables
//! and CSV by hand). Keeping the derives in the type definitions keeps
//! the source ready for the real `serde` the moment a registry is
//! available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
