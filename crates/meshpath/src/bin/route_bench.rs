//! `RouteService` concurrent-query throughput: the `BENCH_route.json`
//! trajectory.
//!
//! Usage: `route_bench [--quick] [--json] [--obs] [--mesh N]
//! [--queries N] [--seed N]`.
//!
//! `--obs` enables the service's `ServiceMetrics` recorder
//! (per-query latency and per-epoch publication histograms) and
//! reports the digest — as an `obs_report` section with `--json`, as a
//! summary line otherwise.
//!
//! Drives one shared [`RouteService`] (RB2 over a seeded fault
//! configuration) from 1, 2 and 4 query threads — every thread grabs
//! the current epoch snapshot per query, exactly like a production
//! caller — and then measures the incremental-mutation path
//! (`add_fault`/`remove_fault` alternating on one coordinate). Rows
//! report wall clock and queries/second; the CI gate compares total
//! wall against the committed `BENCH_route.json` baseline with the
//! standard 3x cross-machine headroom.

use std::time::Instant;

use meshpath::analysis::jsonl::{document_with, JsonObject};
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json = argv.iter().any(|a| a == "--json");
    let obs = argv.iter().any(|a| a == "--obs");
    let mut mesh_n: u32 = if quick { 16 } else { 32 };
    let mut queries: usize = if quick { 2_000 } else { 20_000 };
    let mut seed: u64 = 0x5eed_0007;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" | "--json" | "--obs" => {}
            "--mesh" => mesh_n = take("--mesh").parse().expect("--mesh: integer"),
            "--queries" => queries = take("--queries").parse().expect("--queries: integer"),
            "--seed" => seed = take("--seed").parse().expect("--seed: integer"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: route_bench [--quick] [--json] [--obs] [--mesh N] [--queries N] \
                     [--seed N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mesh = Mesh::square(mesh_n);
    let fault_count = (mesh.len() / 40).max(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let faults = FaultSet::random(mesh, fault_count, FaultInjection::Uniform, &mut rng);
    let service = RouteService::new(faults);
    let service = if obs { service.with_metrics() } else { service };

    // A deterministic query set over healthy pairs.
    let view = service.view();
    let healthy: Vec<Coord> = view.mesh().iter().filter(|&c| view.faults().is_healthy(c)).collect();
    let pairs: Vec<(Coord, Coord)> = (0..queries)
        .map(|_| loop {
            let s = healthy[rng.gen_range(0..healthy.len())];
            let d = healthy[rng.gen_range(0..healthy.len())];
            if s != d {
                return (s, d);
            }
        })
        .collect();

    let mut rows: Vec<JsonObject> = Vec::new();
    let mut total_wall_ms = 0.0;
    for threads in [1usize, 2, 4] {
        let started = Instant::now();
        let routed: usize = std::thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let service = &service;
                    let pairs = &pairs;
                    scope.spawn(move || {
                        let mut routed = 0;
                        for (s, d) in pairs.iter().skip(t).step_by(threads) {
                            // Unreachable pairs are legal outcomes of a
                            // random fault draw; anything else is a bug.
                            match service.route(*s, *d) {
                                Ok(_) => routed += 1,
                                Err(RouteError::Unreachable { .. }) => {}
                                Err(e) => panic!("route bench query failed: {e}"),
                            }
                        }
                        routed
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .sum()
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        total_wall_ms += wall_ms;
        let qps = queries as f64 / (wall_ms * 1e-3);
        let mut row = JsonObject::new();
        row.string("phase", "query")
            .field("threads", threads)
            .field("queries", queries)
            .field("routed", routed)
            .float("wall_ms", wall_ms, 3)
            .float("qps", qps, 1);
        rows.push(row);
        if !json {
            println!(
                "query  threads {threads}: {queries} queries in {wall_ms:8.1} ms  ({qps:9.0}/s, {routed} routed)"
            );
        }
    }

    // The mutation path: alternating incremental add/remove on healthy
    // coordinates (each publishes a new epoch).
    let mutations = if quick { 40 } else { 200 };
    let started = Instant::now();
    for i in 0..mutations {
        let c = healthy[(i * 97) % healthy.len()];
        // Every add is immediately repaired, so `c` is healthy at the
        // start of each iteration and both mutations must succeed.
        match service.add_fault(c) {
            Ok(_) => {
                service.remove_fault(c).expect("repairing the fault just added");
            }
            Err(e) => panic!("mutation bench add failed: {e}"),
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    total_wall_ms += wall_ms;
    let mut row = JsonObject::new();
    row.string("phase", "update")
        .field("threads", 1)
        .field("queries", 2 * mutations)
        .field("routed", 0)
        .float("wall_ms", wall_ms, 3)
        .float("qps", 2.0 * mutations as f64 / (wall_ms * 1e-3), 1);
    rows.push(row);
    if !json {
        println!(
            "update threads 1: {} epochs in {wall_ms:8.1} ms  ({:.0}/s)",
            2 * mutations,
            2.0 * mutations as f64 / (wall_ms * 1e-3)
        );
    }

    // The service-side observability digest: per-query latency and
    // per-epoch publication histograms from `ServiceMetrics`.
    let obs_rows: Vec<JsonObject> = service
        .metrics()
        .map(|m| {
            let (q, u) = (m.query_ns(), m.update_ns());
            let mut o = JsonObject::new();
            o.field("queries_ok", m.queries_ok())
                .field("queries_err", m.queries_err())
                .field("updates", m.updates())
                .float("query_mean_ns", q.mean(), 1)
                .field("query_p50_ns", q.percentile(0.50))
                .field("query_p95_ns", q.percentile(0.95))
                .field("query_p99_ns", q.percentile(0.99))
                .float("update_mean_ns", u.mean(), 1)
                .field("update_p95_ns", u.percentile(0.95))
                .field("update_max_ns", u.max());
            if !json {
                println!(
                    "obs    queries {}+{}err p50 {} ns p99 {} ns | updates {} p95 {} ns",
                    m.queries_ok(),
                    m.queries_err(),
                    q.percentile(0.50),
                    q.percentile(0.99),
                    m.updates(),
                    u.percentile(0.95),
                );
            }
            vec![o]
        })
        .unwrap_or_default();

    if json {
        let mut config = JsonObject::new();
        config
            .field("mesh", mesh_n)
            .field("faults", fault_count)
            .field("queries", queries)
            .field("seed", seed)
            .string("router", service.router_name())
            .float("total_wall_ms", total_wall_ms, 3);
        let sections: Vec<(&str, &[JsonObject])> =
            if obs_rows.is_empty() { Vec::new() } else { vec![("obs_report", &obs_rows)] };
        print!("{}", document_with(&config, &rows, &sections));
    }
}
