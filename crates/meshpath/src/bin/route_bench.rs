//! `RouteService` concurrent-query throughput: the `BENCH_route.json`
//! trajectory.
//!
//! Usage: `route_bench [--quick] [--json] [--obs] [--mesh N]
//! [--queries N] [--batch N] [--cache-entries N] [--reps N] [--seed N]`.
//!
//! Phases, in row order:
//!
//! * **query** (threads 1, 2, 4) — single-query serving against the
//!   lock-free RCU read path with the per-epoch warm route cache
//!   pre-warmed (every thread count measures the same warm serving
//!   path, so the 1→4 scaling curve is apples-to-apples — the CI gate
//!   fails the run if qps@4 drops below qps@1). Each row is the best of
//!   `--reps` repetitions, the same take-the-fastest protocol the CI
//!   gates already apply across whole runs;
//! * **batch** (threads 1, 2, 4) — the same query set served through
//!   `route_many` in `--batch`-sized chunks (one snapshot resolution
//!   and one metrics record per chunk);
//! * **mixed** — the read-under-write phase: 4 query threads stream
//!   queries while a churn thread publishes fault/repair epochs as fast
//!   as it can; reports both qps and applied updates/second;
//! * **update** — the uncontended incremental-mutation path
//!   (alternating add/remove, each publishing an epoch); the row
//!   reports `applied` mutations and `ups` (updates per second) — no
//!   query counters.
//!
//! `--obs` enables `ServiceMetrics` (latency histograms, route-cache
//! hit/miss counters, batch sizes) and reports the digest — as an
//! `obs_report` section with `--json`, as a summary line otherwise.
//! Metrics recording adds shared counter writes to the read path, so
//! the scaling rows are measured with it off unless asked.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use meshpath::analysis::jsonl::{document_with, JsonObject};
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json = argv.iter().any(|a| a == "--json");
    let obs = argv.iter().any(|a| a == "--obs");
    let mut mesh_n: u32 = if quick { 16 } else { 32 };
    let mut queries: usize = if quick { 2_000 } else { 20_000 };
    let mut batch: usize = 256;
    let mut cache_entries: usize = DEFAULT_CACHE_ENTRIES;
    let mut reps: usize = 3;
    let mut seed: u64 = 0x5eed_0007;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" | "--json" | "--obs" => {}
            "--mesh" => mesh_n = take("--mesh").parse().expect("--mesh: integer"),
            "--queries" => queries = take("--queries").parse().expect("--queries: integer"),
            "--batch" => batch = take("--batch").parse().expect("--batch: integer"),
            "--cache-entries" => {
                cache_entries = take("--cache-entries").parse().expect("--cache-entries: integer")
            }
            "--reps" => reps = take("--reps").parse().expect("--reps: integer"),
            "--seed" => seed = take("--seed").parse().expect("--seed: integer"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: route_bench [--quick] [--json] [--obs] [--mesh N] [--queries N] \
                     [--batch N] [--cache-entries N] [--reps N] [--seed N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(batch > 0, "--batch must be positive");
    assert!(reps > 0, "--reps must be positive");

    let mesh = Mesh::square(mesh_n);
    let fault_count = (mesh.len() / 40).max(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let faults = FaultSet::random(mesh, fault_count, FaultInjection::Uniform, &mut rng);
    let service = RouteService::new(faults).with_route_cache(cache_entries);
    let service = if obs { service.with_metrics() } else { service };

    // A deterministic query set over healthy pairs.
    let view = service.view();
    let healthy: Vec<Coord> = view.mesh().iter().filter(|&c| view.faults().is_healthy(c)).collect();
    let pairs: Vec<(Coord, Coord)> = (0..queries)
        .map(|_| loop {
            let s = healthy[rng.gen_range(0..healthy.len())];
            let d = healthy[rng.gen_range(0..healthy.len())];
            if s != d {
                return (s, d);
            }
        })
        .collect();

    // Count a batch's deliveries; unreachable pairs are legal outcomes
    // of a random fault draw, anything else is a bug.
    let count_routed = |replies: &[Result<RouteReply, RouteError>]| -> usize {
        replies
            .iter()
            .map(|r| match r {
                Ok(_) => 1,
                Err(RouteError::Unreachable { .. }) => 0,
                Err(e) => panic!("route bench query failed: {e}"),
            })
            .sum()
    };

    // Pre-warm: route every pair once so each thread count measures the
    // same warm serving path (the per-epoch cache fills exactly once).
    count_routed(&service.route_many(&pairs));

    let mut rows: Vec<JsonObject> = Vec::new();
    let mut total_wall_ms = 0.0;

    // Per-repetition drain window recorded by one worker: (began,
    // ended, whether this worker pulled at least one chunk).
    type RepSpan = (Instant, Instant, bool);

    // One scaling row: workers pull `batch`-sized chunks of the pair
    // list from a shared queue (one fetch-add per chunk), so the wall
    // time measures aggregate service throughput rather than the
    // slowest static partition. The workers are spawned once per row;
    // each repetition is bracketed by barriers and **timed inside the
    // workers** (span envelope over the workers that actually drained
    // chunks) — the coordinator may be descheduled across a barrier
    // release, so its own clock can miss most of a drain. Returns
    // (routed-per-rep, best wall_ms over `reps`).
    let run_phase = |threads: usize, batched: bool| -> (usize, f64) {
        let next = AtomicUsize::new(0);
        let barrier = Barrier::new(threads + 1);
        let (total_routed, spans): (usize, Vec<Vec<RepSpan>>) = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let service = &service;
                    let pairs = &pairs;
                    let count_routed = &count_routed;
                    let (next, barrier) = (&next, &barrier);
                    scope.spawn(move || {
                        let mut routed = 0;
                        let mut spans = Vec::with_capacity(reps);
                        for _ in 0..reps {
                            barrier.wait();
                            let began = Instant::now();
                            let mut drained = false;
                            loop {
                                let start = next.fetch_add(batch, Ordering::Relaxed);
                                if start >= pairs.len() {
                                    break;
                                }
                                drained = true;
                                let chunk = &pairs[start..(start + batch).min(pairs.len())];
                                if batched {
                                    routed += count_routed(&service.route_many(chunk));
                                } else {
                                    for &(s, d) in chunk {
                                        match service.route(s, d) {
                                            Ok(_) => routed += 1,
                                            Err(RouteError::Unreachable { .. }) => {}
                                            Err(e) => {
                                                panic!("route bench query failed: {e}")
                                            }
                                        }
                                    }
                                }
                            }
                            spans.push((began, Instant::now(), drained));
                            barrier.wait();
                        }
                        (routed, spans)
                    })
                })
                .collect();
            for _ in 0..reps {
                next.store(0, Ordering::Relaxed);
                barrier.wait(); // release the drain
                barrier.wait(); // wait for it to finish before resetting
            }
            workers.into_iter().map(|h| h.join().expect("query thread panicked")).fold(
                (0, Vec::new()),
                |(routed, mut spans), (r, s)| {
                    spans.push(s);
                    (routed + r, spans)
                },
            )
        });
        let best_wall_ms = (0..reps)
            .map(|rep| {
                let active = spans.iter().map(|s| s[rep]).filter(|(_, _, drained)| *drained);
                let began = active.clone().map(|(b, _, _)| b).min().expect("some worker drained");
                let ended = active.map(|(_, e, _)| e).max().expect("some worker drained");
                ended.duration_since(began).as_secs_f64() * 1e3
            })
            .fold(f64::MAX, f64::min);
        debug_assert_eq!(total_routed % reps, 0, "reps disagree on routed count");
        (total_routed / reps, best_wall_ms)
    };

    // Phases 1 and 2: single-query then batched (`route_many`) serving
    // at 1, 2 and 4 threads. Each row keeps the fastest of `reps`
    // repetitions — the routed count is identical across reps (same
    // pairs, same epoch), only the wall time varies with scheduling.
    for batched in [false, true] {
        for threads in [1usize, 2, 4] {
            let (routed, wall_ms) = run_phase(threads, batched);
            total_wall_ms += wall_ms;
            let qps = queries as f64 / (wall_ms * 1e-3);
            let phase = if batched { "batch" } else { "query" };
            let mut row = JsonObject::new();
            row.string("phase", phase)
                .field("threads", threads)
                .field("queries", queries)
                .field("routed", routed)
                .field("reps", reps);
            if batched {
                row.field("batch", batch);
            }
            row.float("wall_ms", wall_ms, 3).float("qps", qps, 1);
            rows.push(row);
            if !json {
                println!(
                    "{phase:6} threads {threads}: {queries} queries in {wall_ms:8.1} ms  ({qps:9.0}/s, {routed} routed, best of {reps})"
                );
            }
        }
    }

    // Phase 3: mixed read/write — 4 query threads stream the query set
    // while a churn thread publishes epochs (add + repair pairs) as
    // fast as the incremental updater allows.
    {
        let stop = AtomicBool::new(false);
        let applied = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let threads = 4usize;
        let started = Instant::now();
        let routed: usize = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let service = &service;
                    let pairs = &pairs;
                    let next = &next;
                    scope.spawn(move || {
                        let mut routed = 0;
                        loop {
                            let start = next.fetch_add(batch, Ordering::Relaxed);
                            if start >= pairs.len() {
                                return routed;
                            }
                            for &(s, d) in &pairs[start..(start + batch).min(pairs.len())] {
                                match service.route(s, d) {
                                    Ok(_) => routed += 1,
                                    // Churn can disconnect or fault a pair
                                    // mid-phase; both are legal outcomes.
                                    Err(RouteError::Unreachable { .. })
                                    | Err(RouteError::SourceFaulty(_))
                                    | Err(RouteError::DestinationFaulty(_)) => {}
                                    Err(e) => panic!("mixed-phase query failed: {e}"),
                                }
                            }
                        }
                    })
                })
                .collect();
            let churn = scope.spawn(|| {
                let mut i = 0usize;
                // At least a few rounds regardless of how fast the
                // drain finishes — a single-core scheduler can park
                // this thread for the whole query drain, and a mixed
                // phase with zero applied updates measures nothing
                // (CI rejects it).
                while i < 4 || !stop.load(Ordering::Relaxed) {
                    let c = healthy[(i * 131) % healthy.len()];
                    i += 1;
                    // Every add is immediately repaired, so the fault
                    // set drifts by at most one node from the baseline.
                    if service.add_fault(c).is_ok() {
                        applied.fetch_add(1, Ordering::Relaxed);
                        service.remove_fault(c).expect("repairing the fault just added");
                        applied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            let routed = workers.into_iter().map(|h| h.join().expect("mixed query thread")).sum();
            stop.store(true, Ordering::Relaxed);
            churn.join().expect("churn thread");
            routed
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        total_wall_ms += wall_ms;
        let applied = applied.load(Ordering::Relaxed);
        let qps = queries as f64 / (wall_ms * 1e-3);
        let ups = applied as f64 / (wall_ms * 1e-3);
        let mut row = JsonObject::new();
        row.string("phase", "mixed")
            .field("threads", threads)
            .field("queries", queries)
            .field("routed", routed)
            .field("applied", applied)
            .float("wall_ms", wall_ms, 3)
            .float("qps", qps, 1)
            .float("ups", ups, 1);
        rows.push(row);
        if !json {
            println!(
                "mixed  threads {threads}+churn: {queries} queries vs {applied} epochs in {wall_ms:8.1} ms  ({qps:9.0} q/s, {ups:6.0} u/s)"
            );
        }
    }

    // Phase 4: the uncontended mutation path — alternating incremental
    // add/remove on healthy coordinates (each publishes a new epoch).
    let mutations = if quick { 40 } else { 200 };
    let started = Instant::now();
    let mut applied = 0u64;
    for i in 0..mutations {
        let c = healthy[(i * 97) % healthy.len()];
        // Every add is immediately repaired, so `c` is healthy at the
        // start of each iteration and both mutations must succeed.
        match service.add_fault(c) {
            Ok(_) => {
                service.remove_fault(c).expect("repairing the fault just added");
                applied += 2;
            }
            Err(e) => panic!("mutation bench add failed: {e}"),
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    total_wall_ms += wall_ms;
    let ups = applied as f64 / (wall_ms * 1e-3);
    let mut row = JsonObject::new();
    row.string("phase", "update")
        .field("threads", 1)
        .field("applied", applied)
        .float("wall_ms", wall_ms, 3)
        .float("ups", ups, 1);
    rows.push(row);
    if !json {
        println!("update threads 1: {applied} epochs applied in {wall_ms:8.1} ms  ({ups:.0}/s)");
    }

    // The service-side observability digest: latency histograms plus
    // the route-cache and batch instruments from `ServiceMetrics`.
    let obs_rows: Vec<JsonObject> = service
        .metrics()
        .map(|m| {
            let (q, u, b) = (m.query_ns(), m.update_ns(), m.batch_size());
            let mut o = JsonObject::new();
            o.field("queries_ok", m.queries_ok())
                .field("queries_err", m.queries_err())
                .field("updates", m.updates())
                .float("query_mean_ns", q.mean(), 1)
                .field("query_p50_ns", q.percentile(0.50))
                .field("query_p95_ns", q.percentile(0.95))
                .field("query_p99_ns", q.percentile(0.99))
                .float("update_mean_ns", u.mean(), 1)
                .field("update_p95_ns", u.percentile(0.95))
                .field("update_max_ns", u.max())
                .field("cache_hits", m.cache_hits())
                .field("cache_misses", m.cache_misses())
                .float("cache_hit_rate", m.cache_hit_rate(), 4)
                .field("batches", m.batches())
                .field("batch_size_p50", b.percentile(0.50))
                .field("batch_size_max", b.max())
                .float("batch_mean_ns", m.batch_ns().mean(), 1);
            if !json {
                println!(
                    "obs    queries {}+{}err p50 {} ns p99 {} ns | cache {}/{} hit | {} batches p50 {} | updates {} p95 {} ns",
                    m.queries_ok(),
                    m.queries_err(),
                    q.percentile(0.50),
                    q.percentile(0.99),
                    m.cache_hits(),
                    m.cache_hits() + m.cache_misses(),
                    m.batches(),
                    b.percentile(0.50),
                    m.updates(),
                    u.percentile(0.95),
                );
            }
            vec![o]
        })
        .unwrap_or_default();

    if json {
        let mut config = JsonObject::new();
        config
            .field("mesh", mesh_n)
            .field("faults", fault_count)
            .field("queries", queries)
            .field("batch", batch)
            .field("cache_entries", cache_entries)
            .field("seed", seed)
            .string("router", service.router_name())
            .float("total_wall_ms", total_wall_ms, 3);
        let sections: Vec<(&str, &[JsonObject])> =
            if obs_rows.is_empty() { Vec::new() } else { vec![("obs_report", &obs_rows)] };
        print!("{}", document_with(&config, &rows, &sections));
    }
}
