//! [`RouteService`]: the concurrent query facade over the
//! epoch-versioned network state.
//!
//! One service owns a [`NetState`] (behind an `RwLock` touched only by
//! mutations and snapshot grabs — never held across a routing
//! computation) and a stateless [`Router`]. Any number of threads can
//! call [`RouteService::route`] concurrently: each query clones the
//! current [`NetView`] (one atomic increment) and runs the per-hop
//! engine against that immutable snapshot, so queries never block each
//! other and a concurrent [`add_fault`](RouteService::add_fault) /
//! [`remove_fault`](RouteService::remove_fault) never invalidates a
//! query in flight — it publishes the next epoch for *subsequent*
//! queries.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

use meshpath_mesh::Coord;
use meshpath_obs::{AtomicLogHistogram, LogHistogram};
use meshpath_route::oracle::DistanceField;
use meshpath_route::{NetState, NetView, RouteResult, Router, RoutingKind, UpdateError};

/// Why a route query failed. Every variant names the offending
/// coordinates, so callers can log or retry without re-deriving
/// context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// An endpoint lies outside the mesh.
    OffMesh(Coord),
    /// The source node is faulty (a faulty node cannot inject).
    SourceFaulty(Coord),
    /// The destination node is faulty (a faulty node cannot eject).
    DestinationFaulty(Coord),
    /// No healthy path connects the pair (the fault set cuts the mesh).
    Unreachable {
        /// The query's source.
        src: Coord,
        /// The query's destination.
        dst: Coord,
    },
    /// The routing function gave up on a connected pair (exhausted its
    /// hop budget). Not expected for the paper's routers; surfaced as
    /// an error rather than a silent truncated path.
    Undelivered {
        /// The query's source.
        src: Coord,
        /// The query's destination.
        dst: Coord,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::OffMesh(c) => write!(f, "endpoint {c:?} lies outside the mesh"),
            RouteError::SourceFaulty(c) => write!(f, "source {c:?} is faulty"),
            RouteError::DestinationFaulty(c) => write!(f, "destination {c:?} is faulty"),
            RouteError::Unreachable { src, dst } => {
                write!(f, "no healthy path connects {src:?} to {dst:?}")
            }
            RouteError::Undelivered { src, dst } => {
                write!(f, "router gave up routing {src:?} to {dst:?}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A successful route query: the engine's full [`RouteResult`] plus the
/// epoch of the snapshot it was answered against.
#[derive(Clone, Debug)]
pub struct RouteReply {
    /// The epoch of the snapshot that answered this query.
    pub epoch: u64,
    /// The route (path, hop count, re-planning statistics).
    pub result: RouteResult,
}

impl RouteReply {
    /// Path length in hops.
    pub fn hops(&self) -> u32 {
        self.result.hops()
    }
}

/// Query and update metrics of one [`RouteService`], recorded with
/// relaxed atomics so concurrent query threads never contend on them.
///
/// Opt-in: a service built with
/// [`with_metrics`](RouteService::with_metrics) records; the plain
/// constructors skip all instrumentation (no clock reads on the query
/// path). Latency histograms are log-bucketed
/// ([`meshpath_obs::LogHistogram`]), so recording is O(1) and
/// percentiles are bounds, not exact order statistics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    query_ns: AtomicLogHistogram,
    updates: AtomicU64,
    update_ns: AtomicLogHistogram,
}

impl ServiceMetrics {
    /// Route queries answered successfully.
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok.load(Ordering::Relaxed)
    }

    /// Route queries that returned a typed error.
    pub fn queries_err(&self) -> u64 {
        self.queries_err.load(Ordering::Relaxed)
    }

    /// Fault mutations attempted (each success published an epoch).
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-query wall-time histogram (nanoseconds).
    pub fn query_ns(&self) -> LogHistogram {
        self.query_ns.snapshot()
    }

    /// Snapshot of the per-update (epoch publication) wall-time
    /// histogram (nanoseconds).
    pub fn update_ns(&self) -> LogHistogram {
        self.update_ns.snapshot()
    }
}

/// The query facade: answers concurrent route queries against the
/// current snapshot and applies incremental fault updates.
pub struct RouteService {
    state: RwLock<NetState>,
    router: Box<dyn Router + Send + Sync>,
    metrics: Option<ServiceMetrics>,
}

impl RouteService {
    /// A service over `faults`, routing with RB2 (the paper's
    /// shortest-path routing).
    pub fn new(faults: meshpath_mesh::FaultSet) -> Self {
        RouteService::with_kind(faults, RoutingKind::Rb2)
    }

    /// A service over `faults`, routing with the given function.
    pub fn with_kind(faults: meshpath_mesh::FaultSet, kind: RoutingKind) -> Self {
        RouteService {
            state: RwLock::new(NetState::new(faults)),
            router: kind.router(),
            metrics: None,
        }
    }

    /// A service adopting an existing snapshot (keeps its epoch).
    pub fn adopt(view: NetView, kind: RoutingKind) -> Self {
        RouteService {
            state: RwLock::new(NetState::adopt(view)),
            router: kind.router(),
            metrics: None,
        }
    }

    /// This service with [`ServiceMetrics`] recording enabled
    /// (builder): every query and fault update is counted and timed.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(ServiceMetrics::default());
        self
    }

    /// The recorded metrics, when
    /// [`with_metrics`](RouteService::with_metrics) enabled them.
    pub fn metrics(&self) -> Option<&ServiceMetrics> {
        self.metrics.as_ref()
    }

    /// The current snapshot (cheap clone — the lock is held only for
    /// the `Arc` bump, never across analysis or routing).
    pub fn view(&self) -> NetView {
        self.state.read().expect("route service lock poisoned").view()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.view().epoch()
    }

    /// The routing function's display name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Routes one message on the current snapshot. Concurrent-safe:
    /// the query runs entirely against its own snapshot clone.
    pub fn route(&self, src: Coord, dst: Coord) -> Result<RouteReply, RouteError> {
        self.route_on(&self.view(), src, dst)
    }

    /// Routes one message on a caller-held snapshot (e.g. to answer a
    /// batch against one consistent epoch while mutations proceed).
    pub fn route_on(
        &self,
        view: &NetView,
        src: Coord,
        dst: Coord,
    ) -> Result<RouteReply, RouteError> {
        let Some(m) = &self.metrics else {
            return self.route_inner(view, src, dst);
        };
        let t = Instant::now();
        let reply = self.route_inner(view, src, dst);
        m.query_ns.record(t.elapsed().as_nanos() as u64);
        match &reply {
            Ok(_) => m.queries_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => m.queries_err.fetch_add(1, Ordering::Relaxed),
        };
        reply
    }

    fn route_inner(
        &self,
        view: &NetView,
        src: Coord,
        dst: Coord,
    ) -> Result<RouteReply, RouteError> {
        let mesh = view.mesh();
        for c in [src, dst] {
            if !mesh.contains(c) {
                return Err(RouteError::OffMesh(c));
            }
        }
        if view.faults().is_faulty(src) {
            return Err(RouteError::SourceFaulty(src));
        }
        if view.faults().is_faulty(dst) {
            return Err(RouteError::DestinationFaulty(dst));
        }
        let result = self.router.route(view, src, dst);
        if result.delivered {
            return Ok(RouteReply { epoch: view.epoch(), result });
        }
        // Classify the failure: disconnection is the expected cause; a
        // connected pair the router gave up on is reported distinctly.
        if !DistanceField::healthy(view.faults(), dst).reachable(src) {
            Err(RouteError::Unreachable { src, dst })
        } else {
            Err(RouteError::Undelivered { src, dst })
        }
    }

    /// Marks `c` faulty (incremental update; see
    /// [`NetState::add_fault`]) and returns the new epoch.
    pub fn add_fault(&self, c: Coord) -> Result<u64, UpdateError> {
        self.timed_update(|state| state.add_fault(c).map(|v| v.epoch()))
    }

    /// Repairs the fault at `c` and returns the new epoch.
    pub fn remove_fault(&self, c: Coord) -> Result<u64, UpdateError> {
        self.timed_update(|state| state.remove_fault(c).map(|v| v.epoch()))
    }

    fn timed_update(
        &self,
        f: impl FnOnce(&mut NetState) -> Result<u64, UpdateError>,
    ) -> Result<u64, UpdateError> {
        let t = self.metrics.as_ref().map(|_| Instant::now());
        let mut state = self.state.write().expect("route service lock poisoned");
        let out = f(&mut state);
        drop(state);
        if let (Some(m), Some(t)) = (&self.metrics, t) {
            m.update_ns.record(t.elapsed().as_nanos() as u64);
            m.updates.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

impl fmt::Debug for RouteService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteService")
            .field("router", &self.router.name())
            .field("view", &self.view())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{Coord, FaultSet, Mesh};

    fn service() -> RouteService {
        let mesh = Mesh::square(12);
        RouteService::new(FaultSet::from_coords(mesh, [Coord::new(5, 5), Coord::new(6, 5)]))
    }

    #[test]
    fn routes_and_reports_epochs() {
        let svc = service();
        let reply = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        assert_eq!(reply.epoch, 0);
        let oracle = DistanceField::healthy(svc.view().faults(), Coord::new(5, 9));
        assert_eq!(reply.hops(), oracle.dist(Coord::new(5, 1)), "RB2 stays shortest-path");
        // Mutate: the next query sees the new epoch and detours further.
        assert_eq!(svc.add_fault(Coord::new(4, 5)).expect("valid"), 1);
        let after = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("still routable");
        assert_eq!(after.epoch, 1);
        assert!(after.hops() >= reply.hops());
        // Repair returns to the original cost.
        assert_eq!(svc.remove_fault(Coord::new(4, 5)).expect("valid"), 2);
        let back = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        assert_eq!(back.hops(), reply.hops());
    }

    #[test]
    fn metrics_count_queries_and_updates() {
        assert!(service().metrics().is_none(), "instrumentation is opt-in");
        let svc = service().with_metrics();
        svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        svc.route(Coord::new(5, 5), Coord::new(1, 1)).expect_err("faulty source");
        svc.add_fault(Coord::new(4, 5)).expect("valid");
        let m = svc.metrics().expect("enabled");
        assert_eq!(m.queries_ok(), 1);
        assert_eq!(m.queries_err(), 1);
        assert_eq!(m.updates(), 1);
        assert_eq!(m.query_ns().count(), 2);
        assert_eq!(m.update_ns().count(), 1);
    }

    #[test]
    fn typed_errors_cover_every_failure() {
        let svc = service();
        assert_eq!(
            svc.route(Coord::new(-1, 0), Coord::new(1, 1)).err(),
            Some(RouteError::OffMesh(Coord::new(-1, 0)))
        );
        assert_eq!(
            svc.route(Coord::new(5, 5), Coord::new(1, 1)).err(),
            Some(RouteError::SourceFaulty(Coord::new(5, 5)))
        );
        assert_eq!(
            svc.route(Coord::new(1, 1), Coord::new(6, 5)).err(),
            Some(RouteError::DestinationFaulty(Coord::new(6, 5)))
        );
        // A fault wall cuts the mesh: unreachable pairs are classified.
        let mesh = Mesh::square(8);
        let wall = RouteService::new(FaultSet::from_coords(mesh, (0..8).map(|x| Coord::new(x, 4))));
        assert_eq!(
            wall.route(Coord::new(0, 0), Coord::new(0, 7)).err(),
            Some(RouteError::Unreachable { src: Coord::new(0, 0), dst: Coord::new(0, 7) })
        );
    }

    #[test]
    fn concurrent_queries_share_one_service() {
        let svc = service();
        let view = svc.view();
        let healthy: Vec<Coord> =
            view.mesh().iter().filter(|&c| view.faults().is_healthy(c)).collect();
        let total: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|t| {
                    let svc = &svc;
                    let healthy = &healthy;
                    scope.spawn(move || {
                        let mut routed = 0;
                        for (i, &s) in healthy.iter().enumerate().skip(t).step_by(4) {
                            let d = healthy[(i * 7 + 3) % healthy.len()];
                            if s == d {
                                continue;
                            }
                            let reply = svc.route(s, d).expect("healthy pairs route");
                            assert!(reply.result.delivered);
                            routed += 1;
                        }
                        routed
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .sum()
        });
        assert!(total > 100, "the fan-out must actually route ({total})");
    }

    #[test]
    fn mutations_race_queries_safely() {
        // Queries keep their snapshot while faults churn underneath.
        let svc = service();
        std::thread::scope(|scope| {
            let q = scope.spawn(|| {
                for _ in 0..200 {
                    match svc.route(Coord::new(0, 0), Coord::new(11, 11)) {
                        Ok(reply) => assert!(reply.result.delivered),
                        Err(e) => panic!("corner pair must stay routable: {e}"),
                    }
                }
            });
            let m = scope.spawn(|| {
                for _ in 0..20 {
                    svc.add_fault(Coord::new(2, 7)).expect("valid add");
                    svc.remove_fault(Coord::new(2, 7)).expect("valid remove");
                }
            });
            q.join().expect("query thread");
            m.join().expect("mutation thread");
        });
        assert_eq!(svc.epoch(), 40);
    }
}
