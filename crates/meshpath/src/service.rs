//! [`RouteService`]: the concurrent query facade over the
//! epoch-versioned network state, with a **lock-free read path**.
//!
//! ## RCU epoch publication
//!
//! The service keeps its writer state (a [`NetState`]) behind a plain
//! `Mutex` that only mutations touch. Every successful
//! [`add_fault`](RouteService::add_fault) /
//! [`remove_fault`](RouteService::remove_fault) publishes the new
//! epoch's [`NetView`] (plus a fresh per-epoch route cache) into an
//! [`arc_swap::ArcSwap`] slot — readers are never blocked, and in-flight
//! queries keep the snapshot they started with.
//!
//! Readers do **not** take any lock, and in steady state they perform
//! **zero shared-memory writes**: each thread keeps a thread-local
//! clone of the published snapshot and revalidates it against the
//! slot's sequence counter — one `Acquire` load of a read-mostly cache
//! line per query. Only the first query a thread issues after a
//! publication refreshes (a brief mutex-protected `Arc` clone). The
//! memory-ordering contract lives with the primitive
//! (`arc_swap`, the workspace's offline stand-in): the counter is
//! bumped `Release` together with the slot under the writer mutex, the
//! reader `Acquire`-loads the counter on *every* query, so a reader is
//! never more than one in-flight publication behind — ordinary RCU
//! staleness, and every answered epoch is a published epoch.
//!
//! ## Batched queries
//!
//! [`route_many`](RouteService::route_many) answers a whole batch
//! against one snapshot resolution: the per-query epoch check, the
//! router scratch allocations ([`HopState`] reuse via
//! [`Router::route_with`]) and the metrics/latency bookkeeping are all
//! paid once per batch.
//!
//! ## Per-epoch warm route cache
//!
//! Each published epoch carries a lazily filled outcome memo bounded by
//! an **entries budget**
//! ([`with_route_cache`](RouteService::with_route_cache), default
//! [`DEFAULT_CACHE_ENTRIES`]; striped interior mutability plus
//! segmented-LRU eviction — see `crate::cache`): repeated queries for a
//! pair are answered by path reconstruction instead of re-running the
//! router, bit-identical to a fresh computation. Because the bound is
//! on memoized *pairs*, not mesh size, hot pairs are served from the
//! cache on arbitrarily large meshes while cold pairs age out of the
//! budget.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arc_swap::{cache::Cache, ArcSwap};
use meshpath_mesh::Coord;
use meshpath_obs::{AtomicLogHistogram, HitMiss, LogHistogram};
use meshpath_route::oracle::DistanceField;
use meshpath_route::{HopState, NetState, NetView, RouteResult, Router, RoutingKind, UpdateError};
use meshpath_traffic::{ChurnInjector, ChurnOp};

use crate::cache::RouteCache;

/// Default entries budget for the per-epoch warm route cache: up to
/// this many `(source, destination)` outcomes stay memoized per epoch,
/// independent of mesh size — the cache evicts cold generations instead
/// of refusing to memoize on large meshes. Override per service with
/// [`RouteService::with_route_cache`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1 << 16;

/// Why a route query failed. Every variant names the offending
/// coordinates, so callers can log or retry without re-deriving
/// context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// An endpoint lies outside the mesh.
    OffMesh(Coord),
    /// The source node is faulty (a faulty node cannot inject).
    SourceFaulty(Coord),
    /// The destination node is faulty (a faulty node cannot eject).
    DestinationFaulty(Coord),
    /// No healthy path connects the pair (the fault set cuts the mesh).
    Unreachable {
        /// The query's source.
        src: Coord,
        /// The query's destination.
        dst: Coord,
    },
    /// The routing function gave up on a connected pair (exhausted its
    /// hop budget). Not expected for the paper's routers; surfaced as
    /// an error rather than a silent truncated path.
    Undelivered {
        /// The query's source.
        src: Coord,
        /// The query's destination.
        dst: Coord,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::OffMesh(c) => write!(f, "endpoint {c:?} lies outside the mesh"),
            RouteError::SourceFaulty(c) => write!(f, "source {c:?} is faulty"),
            RouteError::DestinationFaulty(c) => write!(f, "destination {c:?} is faulty"),
            RouteError::Unreachable { src, dst } => {
                write!(f, "no healthy path connects {src:?} to {dst:?}")
            }
            RouteError::Undelivered { src, dst } => {
                write!(f, "router gave up routing {src:?} to {dst:?}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

impl RouteError {
    /// Whether a later retry of the *same* query could succeed without
    /// the caller changing anything — i.e. the failure is a property of
    /// the current fault epoch, not of the query. Under online churn a
    /// faulty endpoint may be repaired and a cut mesh may reconnect, so
    /// every fault-dependent variant is transient; only
    /// [`OffMesh`](RouteError::OffMesh) is permanent (no epoch makes a
    /// coordinate enter the mesh).
    pub fn is_transient(&self) -> bool {
        !matches!(self, RouteError::OffMesh(_))
    }
}

/// Bounded-backoff retry schedule for
/// [`route_with_retry`](RouteService::route_with_retry): up to
/// `attempts` tries, sleeping `backoff * n` before the `n`-th retry
/// (linear backoff, so total wait is bounded by
/// `backoff * attempts * (attempts - 1) / 2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total number of attempts (including the first). Clamped to at
    /// least 1.
    pub attempts: u32,
    /// Base sleep between attempts; the wait grows linearly with the
    /// attempt number.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(1) }
    }
}

/// A successful route query: the engine's full [`RouteResult`] plus the
/// epoch of the snapshot it was answered against.
#[derive(Clone, Debug)]
pub struct RouteReply {
    /// The epoch of the snapshot that answered this query.
    pub epoch: u64,
    /// The route (path, hop count, re-planning statistics).
    pub result: RouteResult,
}

impl RouteReply {
    /// Path length in hops.
    pub fn hops(&self) -> u32 {
        self.result.hops()
    }
}

/// Query and update metrics of one [`RouteService`], recorded with
/// relaxed atomics so concurrent query threads never contend on them.
///
/// Opt-in: a service built with
/// [`with_metrics`](RouteService::with_metrics) records; the plain
/// constructors skip all instrumentation (no clock reads and no shared
/// counter writes on the query path — the zero-shared-write scaling
/// claim holds only with metrics off). Latency histograms are
/// log-bucketed ([`meshpath_obs::LogHistogram`]), so recording is O(1)
/// and percentiles are bounds, not exact order statistics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    query_ns: AtomicLogHistogram,
    updates: AtomicU64,
    update_ns: AtomicLogHistogram,
    route_cache: HitMiss,
    batches: AtomicU64,
    batch_size: AtomicLogHistogram,
    batch_ns: AtomicLogHistogram,
}

impl ServiceMetrics {
    /// Route queries answered successfully (single and batched).
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok.load(Ordering::Relaxed)
    }

    /// Route queries that returned a typed error (single and batched).
    pub fn queries_err(&self) -> u64 {
        self.queries_err.load(Ordering::Relaxed)
    }

    /// Fault mutations attempted (each success published an epoch).
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-query wall-time histogram (nanoseconds;
    /// single-query path only — batches record into
    /// [`batch_ns`](ServiceMetrics::batch_ns)).
    pub fn query_ns(&self) -> LogHistogram {
        self.query_ns.snapshot()
    }

    /// Snapshot of the per-update (epoch publication) wall-time
    /// histogram (nanoseconds).
    pub fn update_ns(&self) -> LogHistogram {
        self.update_ns.snapshot()
    }

    /// Warm route-cache hits (queries answered by path reconstruction).
    pub fn cache_hits(&self) -> u64 {
        self.route_cache.hits()
    }

    /// Warm route-cache misses (queries that ran the router; the
    /// outcome was memoized for the rest of the epoch).
    pub fn cache_misses(&self) -> u64 {
        self.route_cache.misses()
    }

    /// Cache hit fraction in `[0, 1]` (0.0 when the cache is disabled
    /// or untouched; never `NaN`).
    pub fn cache_hit_rate(&self) -> f64 {
        self.route_cache.hit_rate()
    }

    /// [`route_many`](RouteService::route_many) batches served.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Snapshot of the batch-size histogram (pairs per
    /// [`route_many`](RouteService::route_many) call).
    pub fn batch_size(&self) -> LogHistogram {
        self.batch_size.snapshot()
    }

    /// Snapshot of the per-batch wall-time histogram (nanoseconds).
    pub fn batch_ns(&self) -> LogHistogram {
        self.batch_ns.snapshot()
    }
}

/// What one publication makes visible to readers, atomically: the
/// epoch's snapshot and its (optional) warm route cache.
#[derive(Debug)]
struct Served {
    view: NetView,
    cache: Option<RouteCache>,
}

/// Source of unique service ids for the thread-local snapshot caches
/// (ids, unlike addresses, are never reused by a later service).
static NEXT_SERVICE_ID: AtomicU64 = AtomicU64::new(0);

/// Per-thread snapshot caches, keyed by service id: each entry owns a
/// thread-local clone of one service's published [`Served`], so the
/// steady-state query path touches no shared mutable memory at all.
/// Bounded: a thread routing against more services than the cap evicts
/// its oldest entry (correctness is unaffected — eviction only costs
/// the next query one refresh).
const THREAD_CACHE_CAP: usize = 8;

thread_local! {
    static SERVED_CACHE: RefCell<Vec<(u64, Cache<Served>)>> = const { RefCell::new(Vec::new()) };
}

/// The query facade: answers concurrent route queries against the
/// current snapshot — lock-free, via RCU epoch publication — and
/// applies incremental fault updates on a writer-side mutex.
pub struct RouteService {
    /// Writer state; taken only by mutations, never by queries.
    writer: Mutex<NetState>,
    /// The published epoch: readers revalidate thread-local clones
    /// against this slot's sequence counter.
    current: ArcSwap<Served>,
    /// Key for the thread-local snapshot caches.
    id: u64,
    router: Box<dyn Router + Send + Sync>,
    metrics: Option<ServiceMetrics>,
    /// Warm-cache entries budget: each epoch's cache memoizes up to
    /// this many pair outcomes (segmented LRU); `0` disables caching.
    cache_entries: usize,
}

impl RouteService {
    /// A service over `faults`, routing with RB2 (the paper's
    /// shortest-path routing).
    pub fn new(faults: meshpath_mesh::FaultSet) -> Self {
        RouteService::with_kind(faults, RoutingKind::Rb2)
    }

    /// A service over `faults`, routing with the given function.
    pub fn with_kind(faults: meshpath_mesh::FaultSet, kind: RoutingKind) -> Self {
        RouteService::from_state(NetState::new(faults), kind)
    }

    /// A service adopting an existing snapshot (keeps its epoch).
    pub fn adopt(view: NetView, kind: RoutingKind) -> Self {
        RouteService::from_state(NetState::adopt(view), kind)
    }

    fn from_state(state: NetState, kind: RoutingKind) -> Self {
        let cache_entries = DEFAULT_CACHE_ENTRIES;
        let current = ArcSwap::new(Self::serve(state.view(), cache_entries));
        RouteService {
            writer: Mutex::new(state),
            current,
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            router: kind.router(),
            metrics: None,
            cache_entries,
        }
    }

    /// This service with [`ServiceMetrics`] recording enabled
    /// (builder): every query, batch and fault update is counted and
    /// timed, and route-cache hits/misses are tracked.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(ServiceMetrics::default());
        self
    }

    /// This service with the warm route cache's entries budget set to
    /// `entries` (builder): each epoch memoizes up to `entries` query
    /// outcomes, evicting cold pairs segmented-LRU style once the
    /// budget fills; `0` disables the cache entirely. The default is
    /// [`DEFAULT_CACHE_ENTRIES`].
    pub fn with_route_cache(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        let view = self.writer.get_mut().expect("route service writer poisoned").view();
        self.current.store(Self::serve(view, entries));
        self
    }

    fn serve(view: NetView, cache_entries: usize) -> Arc<Served> {
        let cache = (cache_entries > 0).then(|| RouteCache::new(cache_entries));
        Arc::new(Served { view, cache })
    }

    /// The recorded metrics, when
    /// [`with_metrics`](RouteService::with_metrics) enabled them.
    pub fn metrics(&self) -> Option<&ServiceMetrics> {
        self.metrics.as_ref()
    }

    /// The current snapshot (cheap clone of the published view; never
    /// blocks on mutations beyond the `Arc` bump).
    pub fn view(&self) -> NetView {
        self.with_served(|served| served.view.clone())
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.with_served(|served| served.view.epoch())
    }

    /// The routing function's display name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Runs `f` against the thread-locally cached publication,
    /// revalidated against the RCU slot (one `Acquire` load when fresh).
    /// `f` must not re-enter the service (internal invariant: routing
    /// never calls back into `RouteService`).
    fn with_served<R>(&self, f: impl FnOnce(&Served) -> R) -> R {
        SERVED_CACHE.with(|tl| {
            let mut tl = tl.borrow_mut();
            let idx = match tl.iter().position(|(id, _)| *id == self.id) {
                Some(i) => i,
                None => {
                    if tl.len() >= THREAD_CACHE_CAP {
                        tl.remove(0);
                    }
                    tl.push((self.id, Cache::new()));
                    tl.len() - 1
                }
            };
            f(tl[idx].1.load(&self.current))
        })
    }

    /// Routes one message on the current snapshot. Concurrent-safe and
    /// lock-free: the query runs entirely against the thread's
    /// revalidated snapshot clone, consulting the epoch's warm route
    /// cache when one exists.
    pub fn route(&self, src: Coord, dst: Coord) -> Result<RouteReply, RouteError> {
        let t = self.metrics.as_ref().map(|_| Instant::now());
        let reply = self.with_served(|served| self.route_served(served, src, dst, None));
        if let (Some(m), Some(t)) = (&self.metrics, t) {
            m.query_ns.record(t.elapsed().as_nanos() as u64);
            match &reply {
                Ok(_) => m.queries_ok.fetch_add(1, Ordering::Relaxed),
                Err(_) => m.queries_err.fetch_add(1, Ordering::Relaxed),
            };
        }
        reply
    }

    /// Routes a whole batch against **one** snapshot resolution: every
    /// reply carries the same epoch, router scratch is allocated once
    /// and reused across the batch ([`Router::route_with`]), and
    /// metrics/latency bookkeeping is amortized to one record per
    /// batch. Replies are returned in the order of `pairs`, each
    /// exactly what [`route`](RouteService::route) would have answered
    /// at this epoch.
    pub fn route_many(&self, pairs: &[(Coord, Coord)]) -> Vec<Result<RouteReply, RouteError>> {
        let t = self.metrics.as_ref().map(|_| Instant::now());
        let replies = self.with_served(|served| {
            let mut scratch = HopState::new(Coord::new(0, 0));
            pairs
                .iter()
                .map(|&(s, d)| self.route_served(served, s, d, Some(&mut scratch)))
                .collect::<Vec<_>>()
        });
        if let (Some(m), Some(t)) = (&self.metrics, t) {
            m.batch_ns.record(t.elapsed().as_nanos() as u64);
            m.batches.fetch_add(1, Ordering::Relaxed);
            m.batch_size.record(pairs.len() as u64);
            let ok = replies.iter().filter(|r| r.is_ok()).count() as u64;
            m.queries_ok.fetch_add(ok, Ordering::Relaxed);
            m.queries_err.fetch_add(replies.len() as u64 - ok, Ordering::Relaxed);
        }
        replies
    }

    /// Routes one message on a caller-held snapshot (e.g. to answer a
    /// batch against one consistent historic epoch while mutations
    /// proceed). Bypasses the warm route cache — the cache belongs to
    /// the *published* epoch, which `view` need not be.
    pub fn route_on(
        &self,
        view: &NetView,
        src: Coord,
        dst: Coord,
    ) -> Result<RouteReply, RouteError> {
        let Some(m) = &self.metrics else {
            return self.route_uncached(view, src, dst, None);
        };
        let t = Instant::now();
        let reply = self.route_uncached(view, src, dst, None);
        m.query_ns.record(t.elapsed().as_nanos() as u64);
        match &reply {
            Ok(_) => m.queries_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => m.queries_err.fetch_add(1, Ordering::Relaxed),
        };
        reply
    }

    /// One query against a resolved publication: validation, then the
    /// epoch's warm cache (when present), then the router.
    fn route_served(
        &self,
        served: &Served,
        src: Coord,
        dst: Coord,
        scratch: Option<&mut HopState>,
    ) -> Result<RouteReply, RouteError> {
        let view = &served.view;
        self.validate(view, src, dst)?;
        let Some(cache) = &served.cache else {
            return self
                .compute(view, src, dst, scratch)
                .map(|result| RouteReply { epoch: view.epoch(), result });
        };
        if let Some(outcome) = cache.lookup(view.mesh(), src, dst) {
            if let Some(m) = &self.metrics {
                m.route_cache.hit();
            }
            return outcome.map(|result| RouteReply { epoch: view.epoch(), result });
        }
        if let Some(m) = &self.metrics {
            m.route_cache.miss();
        }
        let outcome = self.compute(view, src, dst, scratch);
        cache.fill(view.mesh(), src, dst, &outcome);
        outcome.map(|result| RouteReply { epoch: view.epoch(), result })
    }

    /// The cacheless query path (historic snapshots, over-budget
    /// meshes before validation).
    fn route_uncached(
        &self,
        view: &NetView,
        src: Coord,
        dst: Coord,
        scratch: Option<&mut HopState>,
    ) -> Result<RouteReply, RouteError> {
        self.validate(view, src, dst)?;
        self.compute(view, src, dst, scratch)
            .map(|result| RouteReply { epoch: view.epoch(), result })
    }

    fn validate(&self, view: &NetView, src: Coord, dst: Coord) -> Result<(), RouteError> {
        let mesh = view.mesh();
        for c in [src, dst] {
            if !mesh.contains(c) {
                return Err(RouteError::OffMesh(c));
            }
        }
        if view.faults().is_faulty(src) {
            return Err(RouteError::SourceFaulty(src));
        }
        if view.faults().is_faulty(dst) {
            return Err(RouteError::DestinationFaulty(dst));
        }
        Ok(())
    }

    /// Runs the router (reusing `scratch` when the caller batches) and
    /// classifies a non-delivery.
    fn compute(
        &self,
        view: &NetView,
        src: Coord,
        dst: Coord,
        scratch: Option<&mut HopState>,
    ) -> Result<RouteResult, RouteError> {
        let result = match scratch {
            Some(state) => self.router.route_with(view, src, dst, state),
            None => self.router.route(view, src, dst),
        };
        if result.delivered {
            return Ok(result);
        }
        // Classify the failure: disconnection is the expected cause; a
        // connected pair the router gave up on is reported distinctly.
        if !DistanceField::healthy(view.faults(), dst).reachable(src) {
            Err(RouteError::Unreachable { src, dst })
        } else {
            Err(RouteError::Undelivered { src, dst })
        }
    }

    /// Routes one message, retrying through transient failures
    /// ([`RouteError::is_transient`]) under the given [`RetryPolicy`].
    ///
    /// Each retry re-resolves the published snapshot, so a concurrent
    /// [`remove_fault`](RouteService::remove_fault) (or a drained churn
    /// injector) between attempts is observed. Permanent errors
    /// (off-mesh endpoints) return immediately without sleeping; when
    /// every attempt fails the *last* transient error is returned, so
    /// the caller sees the freshest epoch's verdict.
    pub fn route_with_retry(
        &self,
        src: Coord,
        dst: Coord,
        policy: &RetryPolicy,
    ) -> Result<RouteReply, RouteError> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 && !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff * attempt);
            }
            match self.route(src, dst) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt was made"))
    }

    /// Drains a live [`ChurnInjector`] into the service: every queued
    /// fail/repair event is applied in submission order, each successful
    /// application publishing a new epoch. Returns
    /// `(applied, rejected)` — rejected events (off-mesh coordinates,
    /// double faults, repairs of healthy nodes) are counted and
    /// skipped, never fatal, mirroring the simulation coordinator's
    /// quantum-boundary behaviour.
    pub fn drain_injector(&self, injector: &ChurnInjector) -> (u64, u64) {
        let (mut applied, mut rejected) = (0u64, 0u64);
        for op in injector.drain() {
            let outcome = match op {
                ChurnOp::Fail(c) => self.add_fault(c),
                ChurnOp::Repair(c) => self.remove_fault(c),
            };
            match outcome {
                Ok(_) => applied += 1,
                Err(_) => rejected += 1,
            }
        }
        (applied, rejected)
    }

    /// Marks `c` faulty (incremental update; see
    /// [`NetState::add_fault`]), publishes the new epoch without
    /// blocking readers, and returns it.
    pub fn add_fault(&self, c: Coord) -> Result<u64, UpdateError> {
        self.timed_update(|state| state.add_fault(c).map(|v| v.epoch()))
    }

    /// Repairs the fault at `c`, publishes the new epoch without
    /// blocking readers, and returns it.
    pub fn remove_fault(&self, c: Coord) -> Result<u64, UpdateError> {
        self.timed_update(|state| state.remove_fault(c).map(|v| v.epoch()))
    }

    fn timed_update(
        &self,
        f: impl FnOnce(&mut NetState) -> Result<u64, UpdateError>,
    ) -> Result<u64, UpdateError> {
        let t = self.metrics.as_ref().map(|_| Instant::now());
        let mut state = self.writer.lock().expect("route service writer poisoned");
        let out = f(&mut state);
        if out.is_ok() {
            // Published while the writer mutex is held, so epochs enter
            // the RCU slot in strictly increasing order.
            self.current.store(Self::serve(state.view(), self.cache_entries));
        }
        drop(state);
        if let (Some(m), Some(t)) = (&self.metrics, t) {
            m.update_ns.record(t.elapsed().as_nanos() as u64);
            m.updates.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

impl fmt::Debug for RouteService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteService")
            .field("router", &self.router.name())
            .field("view", &self.view())
            .field("cache_entries", &self.cache_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{Coord, FaultSet, Mesh};

    fn service() -> RouteService {
        let mesh = Mesh::square(12);
        RouteService::new(FaultSet::from_coords(mesh, [Coord::new(5, 5), Coord::new(6, 5)]))
    }

    #[test]
    fn routes_and_reports_epochs() {
        let svc = service();
        let reply = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        assert_eq!(reply.epoch, 0);
        let oracle = DistanceField::healthy(svc.view().faults(), Coord::new(5, 9));
        assert_eq!(reply.hops(), oracle.dist(Coord::new(5, 1)), "RB2 stays shortest-path");
        // Mutate: the next query sees the new epoch and detours further.
        assert_eq!(svc.add_fault(Coord::new(4, 5)).expect("valid"), 1);
        let after = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("still routable");
        assert_eq!(after.epoch, 1);
        assert!(after.hops() >= reply.hops());
        // Repair returns to the original cost.
        assert_eq!(svc.remove_fault(Coord::new(4, 5)).expect("valid"), 2);
        let back = svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        assert_eq!(back.hops(), reply.hops());
    }

    #[test]
    fn metrics_count_queries_and_updates() {
        assert!(service().metrics().is_none(), "instrumentation is opt-in");
        let svc = service().with_metrics();
        svc.route(Coord::new(5, 1), Coord::new(5, 9)).expect("routable");
        svc.route(Coord::new(5, 5), Coord::new(1, 1)).expect_err("faulty source");
        svc.add_fault(Coord::new(4, 5)).expect("valid");
        let m = svc.metrics().expect("enabled");
        assert_eq!(m.queries_ok(), 1);
        assert_eq!(m.queries_err(), 1);
        assert_eq!(m.updates(), 1);
        assert_eq!(m.query_ns().count(), 2);
        assert_eq!(m.update_ns().count(), 1);
    }

    #[test]
    fn warm_cache_hits_are_bit_identical_and_counted() {
        let svc = service().with_metrics();
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 9));
        let cold = svc.route(s, d).expect("routable");
        let warm = svc.route(s, d).expect("routable");
        assert_eq!(warm.epoch, cold.epoch);
        assert_eq!(warm.result, cold.result, "a cache hit reconstructs the exact result");
        let m = svc.metrics().expect("enabled");
        assert_eq!((m.cache_hits(), m.cache_misses()), (1, 1));
        assert!(m.cache_hit_rate() > 0.49 && m.cache_hit_rate() < 0.51);
        // A mutation publishes a fresh epoch with a fresh (empty) cache.
        svc.add_fault(Coord::new(1, 1)).expect("valid");
        svc.route(s, d).expect("routable");
        assert_eq!((m.cache_hits(), m.cache_misses()), (1, 2));
    }

    #[test]
    fn cache_budget_gates_memoization() {
        let svc = service().with_metrics().with_route_cache(0);
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 9));
        let a = svc.route(s, d).expect("routable");
        let b = svc.route(s, d).expect("routable");
        assert_eq!(a.result, b.result);
        let m = svc.metrics().expect("enabled");
        assert_eq!((m.cache_hits(), m.cache_misses()), (0, 0), "budget 0 disables the cache");
    }

    #[test]
    fn large_meshes_memoize_hot_pairs_within_the_entries_budget() {
        // 64x64 = 4096 nodes — far beyond the old all-or-nothing node
        // gate. The entries-budget LRU must still serve repeats warm.
        let mesh = Mesh::square(64);
        let svc = RouteService::new(FaultSet::from_coords(mesh, [Coord::new(30, 30)]))
            .with_metrics()
            .with_route_cache(256);
        let (s, d) = (Coord::new(1, 2), Coord::new(60, 55));
        let cold = svc.route(s, d).expect("routable");
        let warm = svc.route(s, d).expect("routable");
        assert_eq!(warm.result, cold.result, "warm replies stay bit-identical on large meshes");
        let m = svc.metrics().expect("enabled");
        assert_eq!((m.cache_hits(), m.cache_misses()), (1, 1));
    }

    #[test]
    fn route_many_matches_per_query_routing_in_order() {
        let svc = service().with_metrics();
        let view = svc.view();
        let pairs: Vec<(Coord, Coord)> = vec![
            (Coord::new(0, 0), Coord::new(11, 11)),
            (Coord::new(5, 5), Coord::new(1, 1)), // faulty source
            (Coord::new(5, 1), Coord::new(5, 9)), // detours the wall
            (Coord::new(-1, 0), Coord::new(1, 1)), // off-mesh
            (Coord::new(11, 0), Coord::new(0, 11)),
        ];
        let batch = svc.route_many(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (&(s, d), reply) in pairs.iter().zip(&batch) {
            match (reply, svc.route_on(&view, s, d)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.epoch, b.epoch, "{s:?}->{d:?}");
                    assert_eq!(a.result, b.result, "{s:?}->{d:?}");
                }
                (Err(a), Err(b)) => assert_eq!(*a, b, "{s:?}->{d:?}"),
                (a, b) => panic!("{s:?}->{d:?}: batch {a:?} vs single {b:?}"),
            }
        }
        let m = svc.metrics().expect("enabled");
        assert_eq!(m.batches(), 1);
        assert_eq!(m.batch_size().max(), pairs.len() as u64);
        assert_eq!(m.batch_ns().count(), 1, "one latency record per batch, not per query");
    }

    #[test]
    fn typed_errors_cover_every_failure() {
        let svc = service();
        assert_eq!(
            svc.route(Coord::new(-1, 0), Coord::new(1, 1)).err(),
            Some(RouteError::OffMesh(Coord::new(-1, 0)))
        );
        assert_eq!(
            svc.route(Coord::new(5, 5), Coord::new(1, 1)).err(),
            Some(RouteError::SourceFaulty(Coord::new(5, 5)))
        );
        assert_eq!(
            svc.route(Coord::new(1, 1), Coord::new(6, 5)).err(),
            Some(RouteError::DestinationFaulty(Coord::new(6, 5)))
        );
        // A fault wall cuts the mesh: unreachable pairs are classified
        // (and the classification is itself memoized — ask twice).
        let mesh = Mesh::square(8);
        let wall = RouteService::new(FaultSet::from_coords(mesh, (0..8).map(|x| Coord::new(x, 4))));
        for _ in 0..2 {
            assert_eq!(
                wall.route(Coord::new(0, 0), Coord::new(0, 7)).err(),
                Some(RouteError::Unreachable { src: Coord::new(0, 0), dst: Coord::new(0, 7) })
            );
        }
    }

    #[test]
    fn concurrent_queries_share_one_service() {
        let svc = service();
        let view = svc.view();
        let healthy: Vec<Coord> =
            view.mesh().iter().filter(|&c| view.faults().is_healthy(c)).collect();
        let total: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|t| {
                    let svc = &svc;
                    let healthy = &healthy;
                    scope.spawn(move || {
                        let mut routed = 0;
                        for (i, &s) in healthy.iter().enumerate().skip(t).step_by(4) {
                            let d = healthy[(i * 7 + 3) % healthy.len()];
                            if s == d {
                                continue;
                            }
                            let reply = svc.route(s, d).expect("healthy pairs route");
                            assert!(reply.result.delivered);
                            routed += 1;
                        }
                        routed
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .sum()
        });
        assert!(total > 100, "the fan-out must actually route ({total})");
    }

    #[test]
    fn mutations_race_queries_safely() {
        // Queries keep their snapshot while faults churn underneath.
        let svc = service();
        std::thread::scope(|scope| {
            let q = scope.spawn(|| {
                for _ in 0..200 {
                    match svc.route(Coord::new(0, 0), Coord::new(11, 11)) {
                        Ok(reply) => assert!(reply.result.delivered),
                        Err(e) => panic!("corner pair must stay routable: {e}"),
                    }
                }
            });
            let m = scope.spawn(|| {
                for _ in 0..20 {
                    svc.add_fault(Coord::new(2, 7)).expect("valid add");
                    svc.remove_fault(Coord::new(2, 7)).expect("valid remove");
                }
            });
            q.join().expect("query thread");
            m.join().expect("mutation thread");
        });
        assert_eq!(svc.epoch(), 40);
    }

    #[test]
    fn route_with_retry_rides_out_transient_churn() {
        // A fault wall cuts the mesh; a concurrent repair heals it
        // mid-retry, and the retry loop picks up the new epoch.
        let mesh = Mesh::square(8);
        let svc = RouteService::new(FaultSet::from_coords(mesh, (0..8).map(|x| Coord::new(x, 4))));
        assert!(svc
            .route(Coord::new(0, 0), Coord::new(0, 7))
            .expect_err("wall cuts the mesh")
            .is_transient());
        let reply = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(2));
                svc.remove_fault(Coord::new(3, 4)).expect("valid repair");
            });
            let policy = RetryPolicy { attempts: 10_000, backoff: Duration::from_micros(100) };
            svc.route_with_retry(Coord::new(0, 0), Coord::new(0, 7), &policy)
        })
        .expect("retry must observe the repair");
        assert_eq!(reply.epoch, 1);
        assert!(reply.result.delivered);
    }

    #[test]
    fn route_with_retry_fails_fast_on_permanent_errors() {
        let svc = service().with_metrics();
        let policy = RetryPolicy { attempts: 5, backoff: Duration::from_secs(60) };
        let err = svc
            .route_with_retry(Coord::new(-1, 0), Coord::new(1, 1), &policy)
            .expect_err("off-mesh never routes");
        assert_eq!(err, RouteError::OffMesh(Coord::new(-1, 0)));
        assert!(!err.is_transient());
        // Exactly one attempt: a 60s backoff would hang the test if the
        // permanent error were retried.
        assert_eq!(svc.metrics().expect("metrics on").queries_err(), 1);
    }

    #[test]
    fn transient_errors_exhaust_attempts_and_return_the_last() {
        let svc = service().with_metrics();
        let policy = RetryPolicy { attempts: 3, backoff: Duration::ZERO };
        let err = svc
            .route_with_retry(Coord::new(5, 5), Coord::new(1, 1), &policy)
            .expect_err("source stays faulty");
        assert_eq!(err, RouteError::SourceFaulty(Coord::new(5, 5)));
        assert_eq!(svc.metrics().expect("metrics on").queries_err(), 3);
    }

    #[test]
    fn drain_injector_applies_live_churn_and_rejects_garbage() {
        let svc = RouteService::new(FaultSet::from_coords(Mesh::square(8), []));
        let injector = ChurnInjector::new();
        injector.fail(Coord::new(2, 2));
        injector.fail(Coord::new(99, 99)); // off-mesh: rejected
        injector.repair(Coord::new(2, 2));
        assert_eq!(svc.drain_injector(&injector), (2, 1));
        assert_eq!(svc.epoch(), 2, "each applied event published an epoch");
        assert_eq!(injector.pending(), 0);
        assert!(svc.route(Coord::new(2, 2), Coord::new(7, 7)).is_ok(), "repaired node routes");
    }

    #[test]
    fn many_services_on_one_thread_stay_coherent() {
        // More services than the thread-local cache cap: eviction must
        // only cost refreshes, never answers from the wrong service.
        let services: Vec<RouteService> = (0..(THREAD_CACHE_CAP + 3))
            .map(|i| {
                let mesh = Mesh::square(8);
                RouteService::new(FaultSet::from_coords(mesh, [Coord::new(i as i32 % 8, 3)]))
            })
            .collect();
        for round in 0..2 {
            for (i, svc) in services.iter().enumerate() {
                let fault = Coord::new(i as i32 % 8, 3);
                assert_eq!(
                    svc.route(fault, Coord::new(7, 7)).err(),
                    Some(RouteError::SourceFaulty(fault)),
                    "service {i} round {round} answered with someone else's faults"
                );
            }
        }
    }
}
