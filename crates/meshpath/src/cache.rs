//! The per-epoch warm route cache: a striped memo of full query
//! outcomes, keyed by `(source, destination)` node ids.
//!
//! One [`RouteCache`] belongs to exactly one published epoch (the
//! service allocates a fresh, empty cache per publication), so entries
//! can never go stale: a fault mutation publishes a new epoch with a
//! new cache and readers that still hold the old snapshot keep the old
//! cache. This is the precomputed all-pairs serving pattern — warmed
//! lazily by real queries instead of an upfront Floyd–Warshall pass, so
//! a publication costs nothing and only the queried region of the pair
//! space is ever materialized.
//!
//! Entries store the **complete** service-level outcome — the delivered
//! path compressed to its hop directions plus the engine statistics, or
//! the typed routing error — so a cache hit reconstructs a reply
//! bit-identical to re-running the router on the epoch's snapshot (the
//! equivalence the service's stress tests pin).
//!
//! Interior mutability is striped: the pair key hashes to one of
//! [`STRIPES`] independent `RwLock`ed maps, so concurrent readers
//! filling disjoint slots contend only when their pairs collide on a
//! stripe — there is no global lock, and at the service's default node
//! budget the stripes stay tiny.

use std::sync::RwLock;

use meshpath_mesh::{Coord, Dir, FxHashMap, Mesh};
use meshpath_route::RouteResult;

use crate::service::RouteError;

/// Number of independently locked cache stripes. A power of two so the
/// stripe selector is a mask; 64 keeps reader collisions rare at any
/// plausible thread count while costing only 64 empty maps per epoch.
pub(crate) const STRIPES: usize = 64;

/// One memoized query outcome (everything after endpoint validation,
/// which is cheaper than the lookup and therefore never cached).
#[derive(Clone, Debug)]
enum CachedRoute {
    /// A delivered route: the path as successive hop directions
    /// (2 bits of information each, stored as one byte) plus the
    /// engine's per-message statistics.
    Delivered { dirs: Box<[Dir]>, replans: u32, fallbacks: u32, detour_hops: u32 },
    /// The typed error the service classified for this pair.
    Failed(RouteError),
}

/// A lazily filled, striped memo of query outcomes for one epoch.
pub(crate) struct RouteCache {
    stripes: Box<[RwLock<FxHashMap<u64, CachedRoute>>]>,
}

impl RouteCache {
    /// An empty cache (allocates only the stripe array).
    pub(crate) fn new() -> Self {
        let stripes = (0..STRIPES).map(|_| RwLock::new(FxHashMap::default())).collect();
        RouteCache { stripes }
    }

    #[inline]
    fn key(mesh: &Mesh, s: Coord, d: Coord) -> u64 {
        ((mesh.id(s).0 as u64) << 32) | mesh.id(d).0 as u64
    }

    #[inline]
    fn stripe(key: u64) -> usize {
        // Source and destination ids both contribute, so row-major query
        // sweeps spread across stripes instead of marching through one.
        ((key ^ (key >> 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (STRIPES - 1)
    }

    /// The memoized outcome for `(s, d)`, reconstructed, or `None` on a
    /// miss. Takes one stripe read lock.
    pub(crate) fn lookup(
        &self,
        mesh: &Mesh,
        s: Coord,
        d: Coord,
    ) -> Option<Result<RouteResult, RouteError>> {
        let key = Self::key(mesh, s, d);
        let stripe = self.stripes[Self::stripe(key)].read().expect("route cache stripe poisoned");
        stripe.get(&key).map(|cached| Self::materialize(s, cached))
    }

    /// Memoizes a freshly computed outcome for `(s, d)`. Takes one
    /// stripe write lock; concurrent fillers of the same pair insert
    /// identical values (the router is deterministic), so last-write
    /// ordering is immaterial.
    pub(crate) fn fill(
        &self,
        mesh: &Mesh,
        s: Coord,
        d: Coord,
        outcome: &Result<RouteResult, RouteError>,
    ) {
        let cached = match outcome {
            Ok(res) => {
                debug_assert!(res.delivered, "only delivered results are Ok at the service layer");
                let dirs = res
                    .path
                    .windows(2)
                    .map(|w| w[0].dir_to(w[1]).expect("cached path hops join neighbors"))
                    .collect();
                CachedRoute::Delivered {
                    dirs,
                    replans: res.replans,
                    fallbacks: res.fallbacks,
                    detour_hops: res.detour_hops,
                }
            }
            // Routing-level failures are worth memoizing (they cost a
            // full BFS classification); endpoint-validation errors never
            // reach the cache — the checks are cheaper than a lookup.
            Err(e @ (RouteError::Unreachable { .. } | RouteError::Undelivered { .. })) => {
                CachedRoute::Failed(*e)
            }
            Err(_) => return,
        };
        let key = Self::key(mesh, s, d);
        self.stripes[Self::stripe(key)]
            .write()
            .expect("route cache stripe poisoned")
            .insert(key, cached);
    }

    /// Number of memoized pairs (test/diagnostic use; takes every
    /// stripe read lock in turn).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().expect("route cache stripe poisoned").len()).sum()
    }

    fn materialize(s: Coord, cached: &CachedRoute) -> Result<RouteResult, RouteError> {
        match cached {
            CachedRoute::Delivered { dirs, replans, fallbacks, detour_hops } => {
                let mut path = Vec::with_capacity(dirs.len() + 1);
                path.push(s);
                let mut cur = s;
                for &dir in dirs.iter() {
                    cur = cur.step(dir);
                    path.push(cur);
                }
                Ok(RouteResult {
                    path,
                    delivered: true,
                    replans: *replans,
                    fallbacks: *fallbacks,
                    detour_hops: *detour_hops,
                })
            }
            CachedRoute::Failed(e) => Err(*e),
        }
    }
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache").field("stripes", &STRIPES).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};
    use meshpath_route::{NetView, RoutingKind};

    #[test]
    fn roundtrip_is_bit_identical() {
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 4)]));
        let router = RoutingKind::Rb2.router();
        let cache = RouteCache::new();
        let pairs = [(Coord::new(0, 0), Coord::new(9, 9)), (Coord::new(4, 0), Coord::new(4, 9))];
        for (s, d) in pairs {
            let fresh = router.route(&net, s, d);
            assert!(fresh.delivered);
            cache.fill(net.mesh(), s, d, &Ok(fresh.clone()));
            let hit = cache.lookup(net.mesh(), s, d).expect("just filled").expect("delivered");
            assert_eq!(hit, fresh, "cache hits reconstruct the exact result");
        }
        assert_eq!(cache.len(), pairs.len());
        assert!(cache.lookup(net.mesh(), Coord::new(1, 1), Coord::new(2, 2)).is_none());
    }

    #[test]
    fn routing_errors_are_memoized_but_validation_errors_are_not() {
        let mesh = Mesh::square(6);
        let cache = RouteCache::new();
        let (s, d) = (Coord::new(0, 0), Coord::new(5, 5));
        let unreachable = RouteError::Unreachable { src: s, dst: d };
        cache.fill(&mesh, s, d, &Err(unreachable));
        assert_eq!(cache.lookup(&mesh, s, d), Some(Err(unreachable)));
        let (s2, d2) = (Coord::new(1, 0), Coord::new(5, 5));
        cache.fill(&mesh, s2, d2, &Err(RouteError::SourceFaulty(s2)));
        assert!(cache.lookup(&mesh, s2, d2).is_none(), "validation errors skip the cache");
    }

    #[test]
    fn stripes_spread_row_major_sweeps() {
        let mesh = Mesh::square(16);
        let mut used = std::collections::HashSet::new();
        let d = Coord::new(15, 15);
        for s in mesh.iter().take(STRIPES) {
            used.insert(RouteCache::stripe(RouteCache::key(&mesh, s, d)));
        }
        assert!(used.len() > STRIPES / 4, "sweep collapsed onto {} stripes", used.len());
    }
}
