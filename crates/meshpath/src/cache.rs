//! The per-epoch warm route cache: a striped, capacity-bounded memo of
//! full query outcomes, keyed by `(source, destination)` node ids.
//!
//! One [`RouteCache`] belongs to exactly one published epoch (the
//! service allocates a fresh, empty cache per publication), so entries
//! can never go stale: a fault mutation publishes a new epoch with a
//! new cache and readers that still hold the old snapshot keep the old
//! cache. This is the precomputed all-pairs serving pattern — warmed
//! lazily by real queries instead of an upfront Floyd–Warshall pass, so
//! a publication costs nothing and only the queried region of the pair
//! space is ever materialized.
//!
//! Entries store the **complete** service-level outcome — the delivered
//! path compressed to its hop directions plus the engine statistics, or
//! the typed routing error — so a cache hit reconstructs a reply
//! bit-identical to re-running the router on the epoch's snapshot (the
//! equivalence the service's stress tests pin).
//!
//! Interior mutability is striped: the pair key hashes to one of
//! [`STRIPES`] independent `RwLock`ed stripes, so concurrent readers
//! filling disjoint slots contend only when their pairs collide on a
//! stripe — there is no global lock.
//!
//! ## Eviction: segmented LRU generations
//!
//! The cache is bounded by an **entries budget** (not a mesh-size
//! gate), so arbitrarily large meshes still memoize their hot pairs.
//! Each stripe keeps two generations, `hot` and `cold`. Fills and
//! cold-hit promotions land in `hot`; when `hot` outgrows the stripe's
//! share of the budget, the whole generation rotates down (`cold` is
//! dropped, `hot` becomes the new `cold`). A pair queried at least once
//! per rotation keeps being re-promoted and never leaves the cache; a
//! pair untouched for two rotations is evicted. This is the classic
//! CLOCK/2Q approximation of LRU with O(1) bookkeeping per operation
//! and no recency list to maintain under the lock.

use std::sync::RwLock;

use meshpath_mesh::{Coord, Dir, FxHashMap, Mesh};
use meshpath_route::RouteResult;

use crate::service::RouteError;

/// Number of independently locked cache stripes. A power of two so the
/// stripe selector is a mask; 64 keeps reader collisions rare at any
/// plausible thread count while costing only 64 empty maps per epoch.
pub(crate) const STRIPES: usize = 64;

/// One memoized query outcome (everything after endpoint validation,
/// which is cheaper than the lookup and therefore never cached).
#[derive(Clone, Debug)]
enum CachedRoute {
    /// A delivered route: the path as successive hop directions
    /// (2 bits of information each, stored as one byte) plus the
    /// engine's per-message statistics.
    Delivered { dirs: Box<[Dir]>, replans: u32, fallbacks: u32, detour_hops: u32 },
    /// The typed error the service classified for this pair.
    Failed(RouteError),
}

/// One lock's worth of cache: two disjoint LRU generations. Entries
/// enter (and re-enter) through `hot`; rotation demotes the whole hot
/// generation to `cold` and drops the previous cold one.
#[derive(Default)]
struct Stripe {
    hot: FxHashMap<u64, CachedRoute>,
    cold: FxHashMap<u64, CachedRoute>,
}

/// A lazily filled, striped, budget-bounded memo of query outcomes for
/// one epoch.
pub(crate) struct RouteCache {
    stripes: Box<[RwLock<Stripe>]>,
    /// Per-stripe hot-generation capacity. Each stripe holds at most
    /// `~2 * cap` entries (one hot + one cold generation), so the whole
    /// cache stays within the entries budget it was built with.
    cap: usize,
}

impl RouteCache {
    /// An empty cache bounded by `budget` total entries across all
    /// stripes (allocates only the stripe array). The budget is split
    /// evenly between stripes and halved for the two generations; it is
    /// rounded up so every stripe can hold at least one pair per
    /// generation.
    pub(crate) fn new(budget: usize) -> Self {
        let stripes = (0..STRIPES).map(|_| RwLock::new(Stripe::default())).collect();
        RouteCache { stripes, cap: (budget / STRIPES / 2).max(1) }
    }

    #[inline]
    fn key(mesh: &Mesh, s: Coord, d: Coord) -> u64 {
        ((mesh.id(s).0 as u64) << 32) | mesh.id(d).0 as u64
    }

    #[inline]
    fn stripe(key: u64) -> usize {
        // Source and destination ids both contribute, so row-major query
        // sweeps spread across stripes instead of marching through one.
        ((key ^ (key >> 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (STRIPES - 1)
    }

    /// Inserts into the hot generation, rotating the generations when
    /// hot outgrows the stripe's capacity. The two maps stay disjoint:
    /// every insertion path removes the key from `cold` first.
    fn insert_hot(stripe: &mut Stripe, key: u64, cached: CachedRoute, cap: usize) {
        stripe.cold.remove(&key);
        stripe.hot.insert(key, cached);
        if stripe.hot.len() > cap {
            stripe.cold = std::mem::take(&mut stripe.hot);
        }
    }

    /// The memoized outcome for `(s, d)`, reconstructed, or `None` on a
    /// miss. A hot-generation hit takes one stripe read lock; a
    /// cold-generation hit upgrades to the write lock to promote the
    /// entry back into `hot` (that recency signal is what keeps hot
    /// pairs resident across rotations).
    pub(crate) fn lookup(
        &self,
        mesh: &Mesh,
        s: Coord,
        d: Coord,
    ) -> Option<Result<RouteResult, RouteError>> {
        let key = Self::key(mesh, s, d);
        let lock = &self.stripes[Self::stripe(key)];
        {
            let stripe = lock.read().expect("route cache stripe poisoned");
            if let Some(cached) = stripe.hot.get(&key) {
                return Some(Self::materialize(s, cached));
            }
            if !stripe.cold.contains_key(&key) {
                return None;
            }
        }
        // Cold hit: re-take the lock writable and promote. Between the
        // two locks a racing promoter may have moved the entry to hot,
        // or a racing rotation may have evicted it — re-check both.
        let mut stripe = lock.write().expect("route cache stripe poisoned");
        if let Some(cached) = stripe.cold.remove(&key) {
            let outcome = Self::materialize(s, &cached);
            Self::insert_hot(&mut stripe, key, cached, self.cap);
            return Some(outcome);
        }
        stripe.hot.get(&key).map(|cached| Self::materialize(s, cached))
    }

    /// Memoizes a freshly computed outcome for `(s, d)`. Takes one
    /// stripe write lock; concurrent fillers of the same pair insert
    /// identical values (the router is deterministic), so last-write
    /// ordering is immaterial.
    pub(crate) fn fill(
        &self,
        mesh: &Mesh,
        s: Coord,
        d: Coord,
        outcome: &Result<RouteResult, RouteError>,
    ) {
        let cached = match outcome {
            Ok(res) => {
                debug_assert!(res.delivered, "only delivered results are Ok at the service layer");
                let dirs = res
                    .path
                    .windows(2)
                    .map(|w| w[0].dir_to(w[1]).expect("cached path hops join neighbors"))
                    .collect();
                CachedRoute::Delivered {
                    dirs,
                    replans: res.replans,
                    fallbacks: res.fallbacks,
                    detour_hops: res.detour_hops,
                }
            }
            // Routing-level failures are worth memoizing (they cost a
            // full BFS classification); endpoint-validation errors never
            // reach the cache — the checks are cheaper than a lookup.
            Err(e @ (RouteError::Unreachable { .. } | RouteError::Undelivered { .. })) => {
                CachedRoute::Failed(*e)
            }
            Err(_) => return,
        };
        let key = Self::key(mesh, s, d);
        let mut stripe =
            self.stripes[Self::stripe(key)].write().expect("route cache stripe poisoned");
        Self::insert_hot(&mut stripe, key, cached, self.cap);
    }

    /// Number of memoized pairs (test/diagnostic use; takes every
    /// stripe read lock in turn).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                let stripe = s.read().expect("route cache stripe poisoned");
                stripe.hot.len() + stripe.cold.len()
            })
            .sum()
    }

    fn materialize(s: Coord, cached: &CachedRoute) -> Result<RouteResult, RouteError> {
        match cached {
            CachedRoute::Delivered { dirs, replans, fallbacks, detour_hops } => {
                let mut path = Vec::with_capacity(dirs.len() + 1);
                path.push(s);
                let mut cur = s;
                for &dir in dirs.iter() {
                    cur = cur.step(dir);
                    path.push(cur);
                }
                Ok(RouteResult {
                    path,
                    delivered: true,
                    replans: *replans,
                    fallbacks: *fallbacks,
                    detour_hops: *detour_hops,
                })
            }
            CachedRoute::Failed(e) => Err(*e),
        }
    }
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("stripes", &STRIPES)
            .field("cap_per_stripe", &self.cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};
    use meshpath_route::{NetView, RoutingKind};

    /// A budget comfortably above anything these tests fill, so the
    /// pre-LRU tests keep exercising the unbounded-looking fast path.
    const ROOMY: usize = 1 << 16;

    #[test]
    fn roundtrip_is_bit_identical() {
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 4)]));
        let router = RoutingKind::Rb2.router();
        let cache = RouteCache::new(ROOMY);
        let pairs = [(Coord::new(0, 0), Coord::new(9, 9)), (Coord::new(4, 0), Coord::new(4, 9))];
        for (s, d) in pairs {
            let fresh = router.route(&net, s, d);
            assert!(fresh.delivered);
            cache.fill(net.mesh(), s, d, &Ok(fresh.clone()));
            let hit = cache.lookup(net.mesh(), s, d).expect("just filled").expect("delivered");
            assert_eq!(hit, fresh, "cache hits reconstruct the exact result");
        }
        assert_eq!(cache.len(), pairs.len());
        assert!(cache.lookup(net.mesh(), Coord::new(1, 1), Coord::new(2, 2)).is_none());
    }

    #[test]
    fn routing_errors_are_memoized_but_validation_errors_are_not() {
        let mesh = Mesh::square(6);
        let cache = RouteCache::new(ROOMY);
        let (s, d) = (Coord::new(0, 0), Coord::new(5, 5));
        let unreachable = RouteError::Unreachable { src: s, dst: d };
        cache.fill(&mesh, s, d, &Err(unreachable));
        assert_eq!(cache.lookup(&mesh, s, d), Some(Err(unreachable)));
        let (s2, d2) = (Coord::new(1, 0), Coord::new(5, 5));
        cache.fill(&mesh, s2, d2, &Err(RouteError::SourceFaulty(s2)));
        assert!(cache.lookup(&mesh, s2, d2).is_none(), "validation errors skip the cache");
    }

    #[test]
    fn stripes_spread_row_major_sweeps() {
        let mesh = Mesh::square(16);
        let mut used = std::collections::HashSet::new();
        let d = Coord::new(15, 15);
        for s in mesh.iter().take(STRIPES) {
            used.insert(RouteCache::stripe(RouteCache::key(&mesh, s, d)));
        }
        assert!(used.len() > STRIPES / 4, "sweep collapsed onto {} stripes", used.len());
    }

    /// Pairs that all land on one stripe, so per-stripe eviction can be
    /// driven deterministically from a test.
    fn same_stripe_pairs(mesh: &Mesh, n: usize) -> Vec<(Coord, Coord)> {
        let d = Coord::new(0, 0);
        let target = RouteCache::stripe(RouteCache::key(mesh, Coord::new(1, 0), d));
        let mut out = vec![(Coord::new(1, 0), d)];
        for s in mesh.iter() {
            if out.len() == n {
                break;
            }
            if s != Coord::new(1, 0)
                && s != d
                && RouteCache::stripe(RouteCache::key(mesh, s, d)) == target
            {
                out.push((s, d));
            }
        }
        assert_eq!(out.len(), n, "mesh too small to find {n} same-stripe pairs");
        out
    }

    #[test]
    fn capacity_bounds_the_stripe_and_evicts_stale_generations() {
        let mesh = Mesh::square(64);
        // budget/STRIPES/2 = 1: each stripe holds one hot + one cold
        // generation of a single entry (≤ 2 resident pairs at rest).
        let cache = RouteCache::new(STRIPES * 2);
        let pairs = same_stripe_pairs(&mesh, 12);
        for &(s, d) in &pairs {
            let e = RouteError::Unreachable { src: s, dst: d };
            cache.fill(&mesh, s, d, &Err(e));
        }
        let (s0, d0) = pairs[0];
        assert!(
            cache.lookup(&mesh, s0, d0).is_none(),
            "the oldest untouched pair must have been evicted"
        );
        let (sn, dn) = *pairs.last().expect("nonempty");
        assert_eq!(
            cache.lookup(&mesh, sn, dn),
            Some(Err(RouteError::Unreachable { src: sn, dst: dn })),
            "the freshest pair stays resident"
        );
        assert!(cache.len() <= 2, "one stripe holds at most hot + cold = 2 entries at cap 1");
    }

    #[test]
    fn hot_pairs_survive_churn_that_evicts_cold_ones() {
        let mesh = Mesh::square(64);
        let cache = RouteCache::new(STRIPES * 2); // cap 1 per stripe
        let pairs = same_stripe_pairs(&mesh, 20);
        let (hot_s, hot_d) = pairs[0];
        let hot_err = RouteError::Unreachable { src: hot_s, dst: hot_d };
        cache.fill(&mesh, hot_s, hot_d, &Err(hot_err));
        // Churn far past capacity, but touch the hot pair after every
        // fill: the lookup promotes it out of the cold generation before
        // the next rotation can drop it.
        for &(s, d) in &pairs[1..] {
            cache.fill(&mesh, s, d, &Err(RouteError::Unreachable { src: s, dst: d }));
            assert_eq!(
                cache.lookup(&mesh, hot_s, hot_d),
                Some(Err(hot_err)),
                "a pair re-queried every rotation never leaves the cache"
            );
        }
        // The untouched churn pairs from early rounds are long gone.
        let (gone_s, gone_d) = pairs[1];
        assert!(cache.lookup(&mesh, gone_s, gone_d).is_none());
    }
}
