//! # meshpath
//!
//! Shortest-path fault-tolerant routing in 2-D meshes — a complete Rust
//! implementation of Jiang & Wu, *On Achieving the Shortest-Path Routing
//! in 2-D Meshes* (IPDPS 2007), grown into a routing *service*: the
//! paper's B1/B2/B3 fault-information machinery behind an
//! epoch-versioned snapshot API that serves concurrent route queries
//! while the fault set changes underneath.
//!
//! ## What this is
//!
//! In a 2-D mesh multicomputer with faulty nodes, Manhattan-distance
//! (monotone) paths may not exist. This library implements the paper's
//! **minimal connected component (MCC)** fault-information machinery so
//! that fully distributed, per-hop routing decisions still produce true
//! shortest paths:
//!
//! * the MCC labeling (`useless` / `can't-reach` fixpoint) and the
//!   rising-staircase component geometry ([`fault`]), with
//!   **incremental** per-fault updates;
//! * the three fault-information models — B1 boundary lines, B2 forbidden
//!   region broadcast, B3 boundaries + relation records ([`info`]);
//! * the routings RB1 / RB2 / RB3 plus the classic fault-tolerant E-cube
//!   baseline, all phrased as one per-hop
//!   [`Router`](prelude::Router) trait over immutable
//!   [`NetView`](prelude::NetView) snapshots ([`route`]);
//! * a deterministic message-passing simulator for the distributed
//!   protocols ([`sim`]);
//! * the full Fig. 5 experiment harness ([`analysis`]);
//! * a flit-level wormhole traffic simulator evaluating the routers as
//!   NoC routing functions under load — including mid-run fault
//!   injection (`fault_churn`) over the same epoch snapshots
//!   ([`traffic`]).
//!
//! ## Quickstart: the query service
//!
//! [`RouteService`] is the front door: build it once, route from as
//! many threads as you like, and mutate the fault set incrementally —
//! every mutation publishes a new epoch without disturbing queries in
//! flight.
//!
//! ```
//! use meshpath::prelude::*;
//!
//! // A 16x16 mesh with a few faults, served by RB2 (the paper's
//! // shortest-path routing).
//! let mesh = Mesh::square(16);
//! let faults = FaultSet::from_coords(
//!     mesh,
//!     [Coord::new(8, 8), Coord::new(7, 9), Coord::new(8, 9)],
//! );
//! let service = RouteService::new(faults);
//!
//! // Route queries return the path plus the epoch that answered them.
//! let reply = service.route(Coord::new(2, 2), Coord::new(13, 13)).unwrap();
//! assert_eq!(reply.epoch, 0);
//!
//! // RB2 is shortest-path: compare against the BFS ground truth.
//! let view = service.view();
//! let oracle = DistanceField::healthy(view.faults(), Coord::new(13, 13));
//! assert_eq!(reply.hops(), oracle.dist(Coord::new(2, 2)));
//!
//! // Batches resolve the snapshot once and reuse router scratch:
//! // every reply is exactly what `route` would answer, in order.
//! let replies = service.route_many(&[
//!     (Coord::new(2, 2), Coord::new(13, 13)),
//!     (Coord::new(0, 15), Coord::new(15, 0)),
//! ]);
//! assert_eq!(replies[0].as_ref().unwrap().epoch, 0);
//!
//! // Failures are typed, not stringly.
//! assert_eq!(
//!     service.route(Coord::new(8, 8), Coord::new(0, 0)).err(),
//!     Some(RouteError::SourceFaulty(Coord::new(8, 8))),
//! );
//!
//! // Fault updates are incremental and epoch-versioned: the old view
//! // still answers at its epoch, new queries see the new epoch.
//! assert_eq!(service.add_fault(Coord::new(2, 7)).unwrap(), 1);
//! assert_eq!(service.route(Coord::new(2, 2), Coord::new(13, 13)).unwrap().epoch, 1);
//! assert_eq!(view.epoch(), 0);
//! ```
//!
//! ## The lock-free read path
//!
//! Queries never take a lock. Mutations build the next epoch on a
//! writer-side [`NetState`](prelude::NetState) (under a mutex only
//! writers touch) and *publish* it RCU-style into an atomic slot; each
//! reader thread keeps its own clone of the published snapshot and
//! revalidates it with **one `Acquire` load** of the slot's sequence
//! counter per query — in steady state the read path performs **zero
//! shared-memory writes**, so throughput scales with query threads
//! instead of inverting under read-lock contention.
//!
//! The memory-ordering contract: the writer bumps the sequence counter
//! with `Release` ordering *after* installing the new snapshot, both
//! under the writer mutex, so a reader that `Acquire`-observes the new
//! counter also observes the complete snapshot (never torn), and
//! epochs are observed in publication order. A reader between those
//! two instants answers at the previous epoch — ordinary RCU
//! staleness; every answered epoch is one the writer published
//! (`tests/service_rcu.rs` races threads to pin exactly this).
//!
//! Three serving layers sit on that snapshot:
//!
//! * [`route`](RouteService::route) — one query, one epoch check;
//! * [`route_many`](RouteService::route_many) — a batch against one
//!   snapshot resolution, sharing router scratch across the batch;
//! * the **per-epoch warm route cache** — a configurable entries
//!   budget ([`RouteService::with_route_cache`], default
//!   [`DEFAULT_CACHE_ENTRIES`] memoized pairs) of lazily filled query
//!   outcomes per epoch (striped segmented-LRU, no global lock), so
//!   repeated pairs are answered by path reconstruction, bit-identical
//!   to re-running the router, on meshes of any size; cold pairs age
//!   out of the budget instead of gating the cache off.
//!
//! For direct, service-free use the same pieces compose by hand:
//! [`NetState`](prelude::NetState) owns the mutable state,
//! [`NetView`](prelude::NetView) is the cheap `Arc` snapshot every
//! consumer (offline engine, traffic fabric, analysis sweeps) routes
//! against, and any [`Router`](prelude::Router) answers per-hop
//! [`decide`](prelude::Router::decide) calls or whole
//! [`route`](prelude::Router::route) queries on it.
//!
//! ## Crate map
//!
//! | module | re-export of | contents |
//! |--------|--------------|----------|
//! | [`mesh`] | `meshpath-mesh` | coordinates, grids, fault sets, connectivity |
//! | [`sim`] | `meshpath-sim` | discrete-event message-passing kernel |
//! | [`fault`] | `meshpath-fault` | MCC labeling (incremental), components, fault blocks |
//! | [`info`] | `meshpath-info` | B1/B2/B3 information models, boundary walks |
//! | [`route`] | `meshpath-route` | `NetView`/`NetState` snapshots, the per-hop `Router` trait, RB1/RB2/RB3, E-cube, XY, oracles |
//! | [`traffic`] | `meshpath-traffic` | wormhole NoC traffic simulator, `fault_churn` |
//! | [`obs`] | `meshpath-obs` | metrics registry, packet-lifecycle tracing, deadlock post-mortems |
//! | [`analysis`] | `meshpath-analysis` | Fig. 5 harness + traffic load sweeps |
//! | (this crate) | — | [`RouteService`], [`RouteError`], [`RouteReply`], [`ServiceMetrics`], [`RetryPolicy`] |
//!
//! ## Online churn
//!
//! The service and the traffic simulator both accept live fault/repair
//! events mid-run: queue them on a [`traffic::ChurnInjector`] and drain
//! it into a [`RouteService`] with
//! [`drain_injector`](RouteService::drain_injector) (each applied event
//! publishes a new epoch), or hand it to a running simulation via
//! [`traffic::OnlineChurn`]. Callers racing churn can classify failures
//! with [`RouteError::is_transient`] and ride them out with
//! [`route_with_retry`](RouteService::route_with_retry) under a bounded
//! [`RetryPolicy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use meshpath_analysis as analysis;
pub use meshpath_fault as fault;
pub use meshpath_info as info;
pub use meshpath_mesh as mesh;
pub use meshpath_obs as obs;
pub use meshpath_route as route;
pub use meshpath_sim as sim;
pub use meshpath_traffic as traffic;
pub use meshpath_workload as workload;

mod cache;
mod service;

pub use service::{
    RetryPolicy, RouteError, RouteReply, RouteService, ServiceMetrics, DEFAULT_CACHE_ENTRIES,
};

/// The items most programs need.
pub mod prelude {
    pub use meshpath_fault::{BorderPolicy, Labeling, Mcc, MccId, MccSet, NodeStatus};
    pub use meshpath_info::{InfoModel, ModelKind};
    pub use meshpath_mesh::render::GridRender;
    pub use meshpath_mesh::{
        Coord, Dir, FaultInjection, FaultSet, Mesh, NodeId, Orientation, Rect,
    };
    pub use meshpath_obs::{ObsLevel, ObsReport, Postmortem, StopKind};
    pub use meshpath_route::oracle::DistanceField;
    pub use meshpath_route::{
        validate_path, AdaptivePolicy, Decision, ECube, HopCtx, HopState, KnowledgeScope, NetState,
        NetView, Network, Rb1, Rb2, Rb3, RouteResult, Router, RoutingKind, UpdateError, XyRouter,
    };
    pub use meshpath_traffic::{
        run_traffic, ChaosConfig, ChurnEvent, ChurnInjector, ChurnOp, HopRouter, OnlineChurn,
        RoutePolicy, SimConfig, TrafficPattern, TrafficStats, VcClass, PIPELINE_DEPTH,
    };

    pub use crate::service::{
        RetryPolicy, RouteError, RouteReply, RouteService, ServiceMetrics, DEFAULT_CACHE_ENTRIES,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_routes() {
        let mesh = Mesh::square(12);
        let faults = FaultSet::from_coords(mesh, [Coord::new(5, 5)]);
        let net = NetView::build(faults);
        for router in [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube] {
            let res = router.route(&net, Coord::new(0, 0), Coord::new(11, 11));
            assert!(res.delivered, "{}", router.name());
            validate_path(&net, Coord::new(0, 0), Coord::new(11, 11), &res).expect("valid");
        }
    }
}
