//! # meshpath
//!
//! Shortest-path fault-tolerant routing in 2-D meshes — a complete Rust
//! implementation of Jiang & Wu, *On Achieving the Shortest-Path Routing
//! in 2-D Meshes* (IPDPS 2007), including every substrate the paper
//! depends on.
//!
//! ## What this is
//!
//! In a 2-D mesh multicomputer with faulty nodes, Manhattan-distance
//! (monotone) paths may not exist. This library implements the paper's
//! **minimal connected component (MCC)** fault-information machinery so
//! that fully distributed, per-hop routing decisions still produce true
//! shortest paths:
//!
//! * the MCC labeling (`useless` / `can't-reach` fixpoint) and the
//!   rising-staircase component geometry ([`fault`]);
//! * the three fault-information models — B1 boundary lines, B2 forbidden
//!   region broadcast, B3 boundaries + relation records ([`info`]);
//! * the routings RB1 / RB2 / RB3 plus the classic fault-tolerant E-cube
//!   baseline over rectangular fault blocks ([`route`]);
//! * a deterministic message-passing simulator for the distributed
//!   protocols ([`sim`]);
//! * the full Fig. 5 experiment harness ([`analysis`]);
//! * a flit-level wormhole traffic simulator evaluating the routers as
//!   NoC routing functions under load ([`traffic`]).
//!
//! ## Quickstart
//!
//! ```
//! use meshpath::prelude::*;
//!
//! // A 16x16 mesh with a few faults.
//! let mesh = Mesh::square(16);
//! let faults = FaultSet::from_coords(
//!     mesh,
//!     [Coord::new(8, 8), Coord::new(7, 9), Coord::new(8, 9)],
//! );
//! let net = Network::build(faults);
//!
//! // Route with RB2 (the paper's shortest-path routing).
//! let res = Rb2::default().route(&net, Coord::new(2, 2), Coord::new(13, 13));
//! assert!(res.delivered);
//!
//! // Compare against the BFS ground truth.
//! let oracle = DistanceField::healthy(net.faults(), Coord::new(13, 13));
//! assert_eq!(res.hops(), oracle.dist(Coord::new(2, 2)));
//! ```
//!
//! ## Crate map
//!
//! | module | re-export of | contents |
//! |--------|--------------|----------|
//! | [`mesh`] | `meshpath-mesh` | coordinates, grids, fault sets, connectivity |
//! | [`sim`] | `meshpath-sim` | discrete-event message-passing kernel |
//! | [`fault`] | `meshpath-fault` | MCC labeling, components, fault blocks |
//! | [`info`] | `meshpath-info` | B1/B2/B3 information models |
//! | [`route`] | `meshpath-route` | RB1/RB2/RB3, E-cube, oracles |
//! | [`traffic`] | `meshpath-traffic` | wormhole NoC traffic simulator |
//! | [`analysis`] | `meshpath-analysis` | Fig. 5 harness + traffic load sweeps |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use meshpath_analysis as analysis;
pub use meshpath_fault as fault;
pub use meshpath_info as info;
pub use meshpath_mesh as mesh;
pub use meshpath_route as route;
pub use meshpath_sim as sim;
pub use meshpath_traffic as traffic;

/// The items most programs need.
pub mod prelude {
    pub use meshpath_fault::{BorderPolicy, Labeling, Mcc, MccId, MccSet, NodeStatus};
    pub use meshpath_info::{InfoModel, ModelKind};
    pub use meshpath_mesh::render::GridRender;
    pub use meshpath_mesh::{
        Coord, Dir, FaultInjection, FaultSet, Mesh, NodeId, Orientation, Rect,
    };
    pub use meshpath_route::oracle::DistanceField;
    pub use meshpath_route::{
        validate_path, AdaptivePolicy, ECube, KnowledgeScope, Network, Rb1, Rb2, Rb3, RouteResult,
        Router,
    };
    pub use meshpath_traffic::{
        run_traffic, HopRouter, RoutePolicy, RoutingKind, SimConfig, TrafficPattern, TrafficStats,
        VcClass, PIPELINE_DEPTH,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_routes() {
        let mesh = Mesh::square(12);
        let faults = FaultSet::from_coords(mesh, [Coord::new(5, 5)]);
        let net = Network::build(faults);
        for router in [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube] {
            let res = router.route(&net, Coord::new(0, 0), Coord::new(11, 11));
            assert!(res.delivered, "{}", router.name());
            validate_path(&net, Coord::new(0, 0), Coord::new(11, 11), &res).expect("valid");
        }
    }
}
