//! Incremental-vs-rebuild equivalence: any sequence of
//! `NetState::add_fault` / `remove_fault` mutations must leave the
//! published snapshot **bit-identical** to a from-scratch
//! `Network::build` of the final fault set — MCC labels (raw predicate
//! masks), component extraction, all three information models (stats
//! *and* per-node knowledge bits), fault blocks, and the route results
//! of RB1/RB2/RB3 — regardless of whether each step took the
//! incremental path or the merge/split full-rebuild fallback.

use meshpath::fault::Labeling;
use meshpath::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full structural equality of a snapshot against a fresh build.
fn assert_equivalent(view: &NetView, faults: &FaultSet) {
    let full = NetView::build(faults.clone());
    let mesh = *view.mesh();
    assert_eq!(view.faults(), faults, "fault sets diverged");
    for o in Orientation::ALL {
        let (a, b) = (view.mccs(o), full.mccs(o));
        let (la, lb): (&Labeling, &Labeling) = (a.labeling(), b.labeling());
        assert_eq!(la.unsafe_count(), lb.unsafe_count(), "unsafe count, {o:?}");
        assert_eq!(la.faulty_count(), lb.faulty_count(), "faulty count, {o:?}");
        for oc in mesh.iter() {
            assert_eq!(la.raw_mask(oc), lb.raw_mask(oc), "label mask at {oc:?}, {o:?}");
            assert_eq!(a.mcc_at(oc), b.mcc_at(oc), "component id at {oc:?}, {o:?}");
        }
        assert_eq!(a.len(), b.len(), "component count, {o:?}");
        for (ma, mb) in a.iter().zip(b.iter()) {
            assert_eq!(ma.id(), mb.id());
            assert_eq!(ma.cell_count(), mb.cell_count(), "cells of {:?}, {o:?}", ma.id());
            assert_eq!(ma.corner(), mb.corner(), "corner of {:?}, {o:?}", ma.id());
            assert_eq!(ma.opposite(), mb.opposite(), "opposite of {:?}, {o:?}", ma.id());
            assert_eq!(ma.cols(), mb.cols(), "spans of {:?}, {o:?}", ma.id());
        }
        for kind in ModelKind::ALL {
            let (ia, ib) = (view.model(o, kind), full.model(o, kind));
            assert_eq!(ia.stats(), ib.stats(), "{kind:?} stats, {o:?}");
            for oc in mesh.iter() {
                for id in 0..a.len() as u32 {
                    assert_eq!(
                        ia.knows(oc, MccId(id)),
                        ib.knows(oc, MccId(id)),
                        "{kind:?} knowledge of {id} at {oc:?}, {o:?}"
                    );
                }
            }
            for id in 0..a.len() as u32 {
                assert_eq!(ia.succ_y(MccId(id)), ib.succ_y(MccId(id)), "{kind:?} succ_y {id}");
                assert_eq!(ia.succ_x(MccId(id)), ib.succ_x(MccId(id)), "{kind:?} succ_x {id}");
                assert_eq!(ia.merged_y(MccId(id)), ib.merged_y(MccId(id)), "merged_y {id}");
                assert_eq!(ia.merged_x(MccId(id)), ib.merged_x(MccId(id)), "merged_x {id}");
            }
        }
    }
    assert_eq!(
        view.blocks().disabled_count(),
        full.blocks().disabled_count(),
        "fault-block extraction diverged"
    );

    // Route results: every router must walk the exact same path on the
    // incremental snapshot as on the fresh build.
    let n = mesh.width() as i32;
    let mut rng = StdRng::seed_from_u64(0x1234_5678 ^ faults.count() as u64);
    let mut compared = 0;
    let mut attempts = 0;
    while compared < 6 && attempts < 200 {
        attempts += 1;
        let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..mesh.height() as i32));
        let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..mesh.height() as i32));
        if s == d || !faults.is_healthy(s) || !faults.is_healthy(d) {
            continue;
        }
        compared += 1;
        for router in [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default()] {
            let inc = router.route(view, s, d);
            let fresh = router.route(&full, s, d);
            assert_eq!(inc, fresh, "{} diverged on {s:?}->{d:?}", router.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mutation_sequences_match_from_scratch_builds(
        draw in (
            (6u32..13, 0u64..0xffff),
            proptest::collection::hash_set((0i32..12, 0i32..12), 1..10),
            proptest::collection::hash_set((0i32..12, 0i32..12), 1..8),
        )
    ) {
        let ((side, seed), initial, ops) = draw;
        let mesh = Mesh::square(side);
        let clip = |&(x, y): &(i32, i32)| Coord::new(x % side as i32, y % side as i32);
        let initial: Vec<Coord> = initial.iter().map(clip).collect();
        let mut faults = FaultSet::from_coords(mesh, initial.clone());
        let mut state = NetState::new(faults.clone());
        let mut incremental_steps = 0u32;

        // Interleave adds and removes: each drawn coordinate toggles
        // (fault it if healthy, repair it if faulty), which exercises
        // both directions plus merge/split fallbacks as clusters grow
        // and shrink. A seeded shuffle decorrelates op order from the
        // set iteration order.
        let mut toggles: Vec<Coord> = ops.iter().map(clip).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..toggles.len()).rev() {
            toggles.swap(i, rng.gen_range(0..=i));
        }
        for c in toggles {
            let view = if faults.is_faulty(c) {
                faults.repair(c);
                state.remove_fault(c).expect("repairing a known fault")
            } else {
                faults.inject(c);
                state.add_fault(c).expect("failing a healthy node")
            };
            incremental_steps += u32::from(state.last_update_was_incremental());
            assert_equivalent(&view, &faults);
        }
        // Not an assertion (dense draws may always merge), but the
        // counter keeps the incremental path honest under inspection.
        let _ = incremental_steps;
    }
}

/// A deterministic long mixed sequence on a larger mesh, with the
/// incremental path verified to actually fire (the proptest above
/// cannot assert that per-case).
#[test]
fn long_mixed_sequence_stays_equivalent_and_incremental() {
    let mesh = Mesh::square(20);
    let mut faults = FaultSet::from_coords(mesh, [Coord::new(3, 3), Coord::new(16, 16)]);
    let mut state = NetState::new(faults.clone());
    let mut incremental = 0;
    let script = [
        (true, Coord::new(10, 4)),
        (true, Coord::new(10, 5)),  // grows a cluster (incremental)
        (true, Coord::new(9, 6)),   // staircase interaction
        (true, Coord::new(4, 3)),   // extends the (3,3) component
        (true, Coord::new(3, 4)),   // may fill the diagonal (merge path)
        (false, Coord::new(10, 4)), // repair inside a cluster
        (true, Coord::new(17, 15)), // near (16,16)
        (false, Coord::new(3, 3)),  // repair the original fault
        (false, Coord::new(9, 6)),
        (true, Coord::new(0, 0)), // border-pressed component
        (false, Coord::new(0, 0)),
    ];
    for (add, c) in script {
        let view = if add {
            faults.inject(c);
            state.add_fault(c).expect("valid add")
        } else {
            faults.repair(c);
            state.remove_fault(c).expect("valid remove")
        };
        incremental += u32::from(state.last_update_was_incremental());
        assert_equivalent(&view, &faults);
    }
    assert!(incremental >= 6, "most isolated updates must take the incremental path");
}
