//! Property-based tests (proptest) for the core invariants:
//!
//! * the labeling fixpoint is stable and orientation-consistent;
//! * every MCC is a rising staircase with usable column geometry;
//! * MCC minimality: monotone feasibility over *safe* nodes equals
//!   monotone feasibility over *healthy* nodes for safe endpoints
//!   (Wang's theorem, the foundation of the paper's shortest-path claim);
//! * boundary walks terminate and stay on safe nodes;
//! * region predicates partition correctly.

use meshpath::fault::{BorderPolicy, Labeling, MccSet};
use meshpath::info::{BoundarySet, InfoModel, ModelKind};
use meshpath::prelude::*;
use meshpath::route::monotone::monotone_feasible;
use proptest::prelude::*;

/// Strategy: a mesh side plus a set of distinct fault coordinates.
fn mesh_and_faults() -> impl Strategy<Value = (u32, Vec<(i32, i32)>)> {
    (6u32..20).prop_flat_map(|side| {
        let coords = proptest::collection::hash_set(
            (0..side as i32, 0..side as i32).prop_map(|(x, y)| (x, y)),
            0..((side * side / 5) as usize).max(1),
        );
        (Just(side), coords.prop_map(|s| s.into_iter().collect()))
    })
}

fn build(side: u32, coords: &[(i32, i32)], o: Orientation) -> MccSet {
    let mesh = Mesh::square(side);
    let faults = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
    MccSet::build(&faults, o, BorderPolicy::Open)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn labeling_fixpoint_is_stable((side, coords) in mesh_and_faults()) {
        let mesh = Mesh::square(side);
        let faults = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
        let lab = Labeling::compute(&faults, Orientation::IDENTITY, BorderPolicy::Open);
        // Re-applying either rule at the fixpoint changes nothing, and
        // unsafe counts tally.
        let mut unsafe_count = 0usize;
        for oc in mesh.iter() {
            let st = lab.status(oc);
            if st.is_unsafe() {
                unsafe_count += 1;
            }
            if st == NodeStatus::Safe {
                let pb = |c: Coord| mesh.contains(c)
                    && (lab.status(c) == NodeStatus::Faulty || lab.is_useless(c));
                let mb = |c: Coord| mesh.contains(c)
                    && (lab.status(c) == NodeStatus::Faulty || lab.is_cant_reach(c));
                prop_assert!(!(pb(oc.step(Dir::PlusX)) && pb(oc.step(Dir::PlusY))));
                prop_assert!(!(mb(oc.step(Dir::MinusX)) && mb(oc.step(Dir::MinusY))));
            }
        }
        prop_assert_eq!(unsafe_count, lab.unsafe_count());
    }

    #[test]
    fn mccs_are_rising_staircases((side, coords) in mesh_and_faults()) {
        for o in Orientation::ALL {
            let set = build(side, &coords, o);
            let mut cells_total = 0usize;
            for m in set.iter() {
                prop_assert!(m.is_staircase(), "non-staircase MCC under {o:?}");
                cells_total += m.cell_count();
                // Column invariants.
                let cols = m.cols();
                for w in cols.windows(2) {
                    prop_assert!(w[0].lo <= w[1].lo);
                    prop_assert!(w[0].hi <= w[1].hi);
                    prop_assert!(w[1].lo <= w[0].hi + 1);
                }
                // The corners sit diagonally outside the component.
                prop_assert!(!m.contains(m.corner()));
                prop_assert!(!m.contains(m.opposite()));
            }
            prop_assert_eq!(cells_total, set.labeling().unsafe_count());
        }
    }

    #[test]
    fn mcc_minimality_for_safe_endpoints((side, coords) in mesh_and_faults()) {
        // For safe endpoints, a Manhattan path through healthy nodes
        // exists iff one through safe nodes does: the MCC model removes
        // only nodes that cannot lie on any monotone path.
        let mesh = Mesh::square(side);
        let faults = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
        let set = MccSet::build(&faults, Orientation::IDENTITY, BorderPolicy::Open);
        let lab = set.labeling();
        let n = side as i32;
        // Sample the diagonal corners plus a few fixed pairs to keep the
        // case count bounded.
        let candidates = [
            (Coord::new(0, 0), Coord::new(n - 1, n - 1)),
            (Coord::new(0, 0), Coord::new(n - 1, 0)),
            (Coord::new(0, 0), Coord::new(0, n - 1)),
            (Coord::new(1, 2), Coord::new(n - 2, n - 2)),
            (Coord::new(2, 0), Coord::new(n - 2, n - 3)),
        ];
        for (s, d) in candidates {
            if !mesh.contains(s) || !mesh.contains(d) || d.x < s.x || d.y < s.y {
                continue;
            }
            if lab.status(s).is_unsafe() || lab.status(d).is_unsafe() {
                continue;
            }
            let healthy = monotone_feasible(s, d, |c| faults.is_faulty(c));
            let safe = monotone_feasible(s, d, |c| lab.status(c).is_unsafe());
            prop_assert_eq!(healthy, safe, "minimality broken for {:?}->{:?}", s, d);
        }
    }

    #[test]
    fn boundary_walks_stay_on_safe_nodes((side, coords) in mesh_and_faults()) {
        let set = build(side, &coords, Orientation::IDENTITY);
        let bounds = BoundarySet::build(&set);
        for b in bounds.iter() {
            for w in [&b.west_y, &b.east_y, &b.south_x, &b.north_x] {
                for &c in &w.nodes {
                    prop_assert!(set.labeling().is_safe_node(c), "walk entered unsafe {c:?}");
                }
                // Consecutive nodes are mesh neighbors.
                for pair in w.nodes.windows(2) {
                    prop_assert!(pair[0].is_neighbor(pair[1]));
                }
            }
        }
    }

    #[test]
    fn shadow_and_critical_are_disjoint_from_cells((side, coords) in mesh_and_faults()) {
        let set = build(side, &coords, Orientation::IDENTITY);
        let mesh = Mesh::square(side);
        for m in set.iter() {
            for c in mesh.iter() {
                let in_cell = m.contains(c);
                prop_assert!(!(in_cell && m.shadow_y(c)));
                prop_assert!(!(in_cell && m.critical_y(c)));
                prop_assert!(!(in_cell && m.shadow_x(c)));
                prop_assert!(!(in_cell && m.critical_x(c)));
                // Shadow and critical never overlap on the same axis.
                prop_assert!(!(m.shadow_y(c) && m.critical_y(c)));
                prop_assert!(!(m.shadow_x(c) && m.critical_x(c)));
            }
        }
    }

    #[test]
    fn knowledge_is_monotone_across_models((side, coords) in mesh_and_faults()) {
        let set = build(side, &coords, Orientation::IDENTITY);
        let b1 = InfoModel::build(&set, ModelKind::B1);
        let b2 = InfoModel::build(&set, ModelKind::B2);
        let b3 = InfoModel::build(&set, ModelKind::B3);
        let mesh = Mesh::square(side);
        for m in set.iter() {
            for c in mesh.iter() {
                if b1.knows(c, m.id()) {
                    prop_assert!(b3.knows(c, m.id()), "B1 carrier missing from B3 at {c:?}");
                    prop_assert!(b2.knows(c, m.id()), "B1 carrier missing from B2 at {c:?}");
                }
            }
        }
    }

    #[test]
    fn orientation_round_trips((side, coords) in mesh_and_faults()) {
        let mesh = Mesh::square(side);
        let faults = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
        for o in Orientation::ALL {
            let lab = Labeling::compute(&faults, o, BorderPolicy::Open);
            for c in mesh.iter() {
                // Faulty is orientation-invariant.
                prop_assert_eq!(
                    lab.status_real(c) == NodeStatus::Faulty,
                    faults.is_faulty(c)
                );
            }
        }
    }
}
