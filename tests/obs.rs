//! Observability end-to-end: the instrumented fabric must (1) never
//! perturb simulation results, (2) produce a usable deadlock
//! post-mortem — stalled packets, the VC wait-for graph, and the
//! packets on its cycle — whenever a run wedges, and (3) classify why
//! a run stopped ([`StopKind`]) so drain stalls and true deadlocks are
//! distinguishable from clean exits.
//!
//! The forced wedge reuses the `tests/escape.rs` operating point: a
//! 16x16 mesh at 10% faults (26 nodes), deterministic routing (no
//! escape VCs) at 2x the historical interlock onset — a configuration
//! the fabric demonstrably cannot drain.

use meshpath::prelude::*;
use meshpath::traffic::{run_traffic_observed, DrainStallObserver, PathTable, TrafficSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `tests/escape.rs` wedge recipe: 16x16, 26 uniform faults,
/// deterministic RB2 at 4% injection.
fn wedge_net() -> NetView {
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(2007);
    NetView::build(FaultSet::random(mesh, 26, FaultInjection::Uniform, &mut rng))
}

fn wedge_cfg() -> SimConfig {
    SimConfig { rate: 0.04, warmup: 150, measure: 500, drain: 1200, ..SimConfig::default() }
        .without_escape()
}

#[test]
fn forced_deadlock_dumps_a_postmortem_naming_the_cycle() {
    let net = wedge_net();
    let cfg = wedge_cfg().with_obs(ObsLevel::Trace);
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let (stats, report) = run_traffic_observed(&mut paths, &cfg, &mut ());
    assert!(stats.deadlocked, "the recipe must wedge: {stats:?}");
    let report = report.expect("obs enabled yields a report");
    assert_eq!(report.stop, StopKind::Deadlock);
    assert!(report.stop.is_wedged());
    assert_eq!(report.stopped_at, stats.cycles, "report and stats agree on the stop cycle");

    // The flight recorder captured the run's last events.
    assert!(!report.recent_events.is_empty(), "Trace level keeps a flight-recorder ring");
    assert!(report.shards.iter().map(|s| s.events_seen).sum::<u64>() > 0);

    // The post-mortem names the blocked traffic: stalled packets, a
    // non-empty VC wait-for graph, and the packets on its cycle.
    let pm = report.postmortem.as_ref().expect("wedged stops dump a post-mortem");
    assert!(!pm.stalled.is_empty(), "stalled packets listed");
    assert!(!pm.wait_edges.is_empty(), "VC wait-for graph non-empty");
    assert!(!pm.cycle_packets.is_empty(), "the cyclic wait is named");
    for p in &pm.cycle_packets {
        assert!(
            pm.stalled.iter().any(|s| s.packet == *p),
            "cycle packet {p} appears among the stalled packets"
        );
        assert!(
            pm.wait_edges.iter().any(|e| e.waiter == *p),
            "cycle packet {p} waits on some channel"
        );
    }
    // And the rendering is a non-trivial human-readable dump.
    let text = pm.render();
    assert!(text.contains("wait-for"), "{text}");

    // Heatmaps cover the full mesh.
    let map = report.link_heatmap();
    assert_eq!(map.lines().count(), 16 + 1, "title plus one line per row:\n{map}");
    assert!(report.link_flits.iter().sum::<u64>() > 0);
}

#[test]
fn wedged_drain_stops_as_drain_stall_with_stalled_packets() {
    // Same wedge, but with the sweep harness's drain-stall observer
    // attached: it cuts the hopeless drain short well before the
    // 1000-idle-cycle deadlock detector, and the stop must be
    // classified as a drain stall — with the same post-mortem quality.
    let net = wedge_net();
    let cfg = wedge_cfg().with_obs(ObsLevel::Trace);
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let mut obs = DrainStallObserver::new(2);
    let (stats, report) = run_traffic_observed(&mut paths, &cfg, &mut obs);
    let report = report.expect("obs enabled yields a report");
    assert!(
        report.stop == StopKind::DrainStall || report.stop == StopKind::Deadlock,
        "a wedged drain stops wedged, got {:?}",
        report.stop
    );
    assert!(report.stop.is_wedged());
    let pm = report.postmortem.as_ref().expect("wedged stops dump a post-mortem");
    assert!(!pm.stalled.is_empty(), "the flight-recorder dump names the stalled packets");
    assert!(!pm.wait_edges.is_empty());
    // The early cut really did save cycles vs the full deadlock run.
    assert!(stats.cycles < 150 + 500 + 1200, "stopped before the configured horizon");
}

#[test]
fn online_churn_wedges_keep_postmortem_parity_and_unperturbed_stats() {
    // The same wedge recipe, now with live churn published mid-run
    // through the online epoch path: observability must stay
    // non-perturbing across epochs the run *invented as it went*, and a
    // wedge under churn must dump the same-quality post-mortem as a
    // static one.
    let net = wedge_net();
    let chaos = ChaosConfig {
        seed: 11,
        fail_prob: 0.5,
        repair_prob: 0.25,
        start: 100,
        stop: 400,
        max_faults: 3,
    };
    let run = |level: ObsLevel| {
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let sim = TrafficSim::new(&mut paths, wedge_cfg().with_obs(level))
            .with_online_churn(OnlineChurn::chaos(chaos));
        sim.run_observed(&mut ())
    };
    let (bare, none) = run(ObsLevel::Off);
    assert!(none.is_none(), "off means off under churn too");
    assert!(!bare.online_events.is_empty(), "the chaos schedule must fire: {bare:?}");
    assert!(bare.deadlocked, "the wedge recipe must still wedge under churn: {bare:?}");
    for level in [ObsLevel::Metrics, ObsLevel::Trace] {
        let (stats, report) = run(level);
        assert_eq!(stats, bare, "observation at {level:?} must not perturb a churning run");
        let report = report.expect("obs enabled yields a report");
        assert!(report.stop.is_wedged());
        let pm = report.postmortem.as_ref().expect("wedged churn runs dump a post-mortem");
        assert!(!pm.stalled.is_empty(), "stalled packets listed");
        assert!(!pm.wait_edges.is_empty(), "VC wait-for graph non-empty");
    }
}

#[test]
fn healthy_runs_report_clean_and_observation_does_not_perturb() {
    let mesh = Mesh::square(16);
    let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(8, 8)]));
    let cfg = SimConfig { rate: 0.02, ..SimConfig::smoke() };
    let bare = run_traffic(&net, RoutingKind::Rb2, &cfg);
    for level in [ObsLevel::Metrics, ObsLevel::Trace] {
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let (stats, report) =
            run_traffic_observed(&mut paths, &cfg.clone().with_obs(level), &mut ());
        assert_eq!(stats, bare, "observation at {level:?} must not perturb the run");
        let report = report.expect("report present at {level:?}");
        assert_eq!(report.stop, StopKind::Clean);
        assert!(report.postmortem.is_none(), "clean runs have no post-mortem");
        assert!(report.delivered > 0);
        assert!(report.link_flits.iter().sum::<u64>() > 0);
    }
    // Off really means off: no report is assembled.
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let (stats, report) = run_traffic_observed(&mut paths, &cfg, &mut ());
    assert_eq!(stats, bare);
    assert!(report.is_none());
}
