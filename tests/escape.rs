//! Escape-routing guarantees: the properties that make the reserved VC
//! classes deadlock-free, and the end-to-end liveness they buy.
//!
//! * The XY escape class admits no cyclic channel dependency on a
//!   faulty mesh: every escape hop strictly decreases the
//!   dimension-order distance (X corrected before Y), checked both as a
//!   per-hop monotonicity property and as an explicit acyclicity check
//!   of the channel-dependency graph the class induces.
//! * The tree escape class routes every connected pair with all "up"
//!   (depth-decreasing) hops before any "down" hop — the up*/down*
//!   order that makes it acyclic for *any* fault pattern.
//! * End to end: on a 16x16 mesh at 10% faults, RB1/RB2/RB3 with
//!   escape VCs sustain at least twice the injection rate that
//!   interlocked the source-routed fabric (~2%), with zero deadlock
//!   flags — while the deterministic policy demonstrably wedges there.

use meshpath::prelude::*;
use meshpath::traffic::{xy_next, xy_path_clear, EscapeForest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Strategy: a mesh side plus a set of distinct fault coordinates
/// (up to ~15% of the nodes).
fn mesh_and_faults() -> impl Strategy<Value = (u32, Vec<(i32, i32)>)> {
    (5u32..12).prop_flat_map(|side| {
        let coords = proptest::collection::hash_set(
            (0..side as i32, 0..side as i32).prop_map(|(x, y)| (x, y)),
            0..((side * side / 7) as usize).max(1),
        );
        (Just(side), coords.prop_map(|s| s.into_iter().collect()))
    })
}

fn fault_set(side: u32, coords: &[(i32, i32)]) -> FaultSet {
    let mesh = Mesh::square(side);
    FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)))
}

/// A virtual channel of one escape class: the link leaving `node` in
/// direction `dir`.
type Channel = (Coord, Dir);

/// Kahn toposort over a channel-dependency graph; returns whether the
/// graph is acyclic. Edges join consecutive channels of a route.
fn acyclic(edges: &[(Channel, Channel)]) -> bool {
    let mut indeg: HashMap<Channel, usize> = HashMap::new();
    let mut out: HashMap<Channel, Vec<Channel>> = HashMap::new();
    let mut seen: std::collections::HashSet<(Channel, Channel)> = std::collections::HashSet::new();
    for &(a, b) in edges {
        if !seen.insert((a, b)) {
            continue;
        }
        indeg.entry(a).or_insert(0);
        *indeg.entry(b).or_insert(0) += 1;
        out.entry(a).or_default().push(b);
    }
    let mut ready: Vec<(Coord, Dir)> =
        indeg.iter().filter(|(_, &d)| d == 0).map(|(&c, _)| c).collect();
    let mut removed = 0usize;
    while let Some(c) = ready.pop() {
        removed += 1;
        for &n in out.get(&c).into_iter().flatten() {
            let d = indeg.get_mut(&n).expect("edge target has an indegree");
            *d -= 1;
            if *d == 0 {
                ready.push(n);
            }
        }
    }
    removed == indeg.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every XY escape hop strictly decreases the dimension-order
    /// distance — the lexicographic potential `(|dx|, |dy|)` — and
    /// stays on healthy nodes whenever the class is enterable
    /// (`xy_path_clear`). Monotone hops cannot revisit a channel, which
    /// is the per-route half of the deadlock-freedom argument.
    #[test]
    fn xy_escape_hops_decrease_dimension_order_distance(
        (side, coords) in mesh_and_faults()
    ) {
        let faults = fault_set(side, &coords);
        let mesh = faults.mesh();
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        for &s in healthy.iter().take(20) {
            for &d in healthy.iter().rev().take(20) {
                if s == d || !xy_path_clear(&faults, s, d) {
                    continue;
                }
                let mut cur = s;
                while cur != d {
                    let dir = xy_next(cur, d);
                    let next = cur.step(dir);
                    prop_assert!(faults.is_healthy(next), "{s:?}->{d:?} hits a fault at {next:?}");
                    // Lexicographic decrease: X first, then Y.
                    if cur.x != d.x {
                        prop_assert!((next.x - d.x).abs() < (cur.x - d.x).abs());
                        prop_assert_eq!(next.y, cur.y, "no Y move before X is corrected");
                    } else {
                        prop_assert_eq!(next.x, d.x, "X stays corrected");
                        prop_assert!((next.y - d.y).abs() < (cur.y - d.y).abs());
                    }
                    cur = next;
                }
            }
        }
    }

    /// The full channel-dependency graph of the XY escape class — every
    /// consecutive channel pair of every enterable `(node, dst)` XY
    /// walk — is acyclic on a faulty mesh.
    #[test]
    fn xy_escape_channel_dependencies_are_acyclic(
        (side, coords) in mesh_and_faults()
    ) {
        let faults = fault_set(side, &coords);
        let mesh = faults.mesh();
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        let mut edges = Vec::new();
        for &s in &healthy {
            for &d in &healthy {
                if s == d || !xy_path_clear(&faults, s, d) {
                    continue;
                }
                let mut cur = s;
                let mut prev: Option<(Coord, Dir)> = None;
                while cur != d {
                    let dir = xy_next(cur, d);
                    let chan = (cur, dir);
                    if let Some(p) = prev {
                        edges.push((p, chan));
                    }
                    prev = Some(chan);
                    cur = cur.step(dir);
                }
            }
        }
        prop_assert!(acyclic(&edges), "XY escape CDG has a cycle on {side}x{side}, {coords:?}");
    }

    /// The tree escape class: every connected pair routes, every route
    /// takes its up (depth-decreasing) hops before any down hop, and
    /// the induced channel-dependency graph is acyclic for any fault
    /// pattern — including ones the XY class cannot serve.
    #[test]
    fn tree_escape_routes_up_then_down_and_acyclically(
        (side, coords) in mesh_and_faults()
    ) {
        let faults = fault_set(side, &coords);
        let mesh = faults.mesh();
        let forest = EscapeForest::new(&faults);
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        let mut edges = Vec::new();
        // Sampling keeps the case fast; routes overlap heavily on a
        // tree, so sampled routes still cover nearly every tree channel.
        for &s in healthy.iter().step_by(2) {
            for &d in healthy.iter().rev().step_by(2) {
                if s == d {
                    continue;
                }
                let Some(first) = forest.next_hop(mesh, s, d) else {
                    // Different components: the pair is unroutable for
                    // every router and never enters the fabric.
                    continue;
                };
                let mut cur = s;
                let mut dir = first;
                let mut went_down = false;
                let mut prev: Option<(Coord, Dir)> = None;
                let mut hops = 0usize;
                loop {
                    let next = cur.step(dir);
                    prop_assert!(faults.is_healthy(next));
                    let (dc, dn) = (forest.depth(mesh, cur), forest.depth(mesh, next));
                    prop_assert_eq!(dc.abs_diff(dn), 1, "tree hops move between levels");
                    if dn > dc {
                        went_down = true;
                    } else {
                        prop_assert!(!went_down, "{s:?}->{d:?}: up after down");
                    }
                    if let Some(p) = prev {
                        edges.push((p, (cur, dir)));
                    }
                    prev = Some((cur, dir));
                    cur = next;
                    hops += 1;
                    prop_assert!(hops <= 2 * mesh.len(), "{s:?}->{d:?}: walk too long");
                    if cur == d {
                        break;
                    }
                    dir = forest.next_hop(mesh, cur, d).expect("mid-route stays connected");
                }
            }
        }
        prop_assert!(acyclic(&edges), "tree escape CDG has a cycle on {side}x{side}, {coords:?}");
    }
}

/// The tentpole acceptance: on a 16x16 mesh at 10% faults (26 nodes),
/// the paper's routers with escape VCs sustain ≥2x the injection rate
/// that interlocked the source-routed fabric (deadlock onset was ~2%),
/// with zero deadlock flags — the deterministic policy wedges at the
/// same operating point.
#[test]
fn escape_vcs_survive_twice_the_old_interlock_onset() {
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(2007);
    let faults = FaultSet::random(mesh, 26, FaultInjection::Uniform, &mut rng);
    let net = NetView::build(faults);
    // 2x the old onset. Smaller windows than the default keep the test
    // quick; the deadlock detector needs 1000 idle cycles, which both
    // window sets allow.
    let cfg =
        SimConfig { rate: 0.04, warmup: 150, measure: 500, drain: 1200, ..SimConfig::default() };
    for kind in [RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3] {
        let stats = run_traffic(&net, kind, &cfg);
        assert!(
            !stats.deadlocked,
            "{} must not interlock at 4% injection with escape VCs: {stats:?}",
            kind.name()
        );
        assert!(stats.escape_packets > 0, "{}: blocking must trigger escapes", kind.name());
        // Past saturation is acceptable (4% exceeds the 26-fault mesh's
        // raw capacity); wedging is not: the fabric must keep
        // delivering at a substantial fraction of the offered load
        // (the deterministic policy below manages ~5%).
        assert!(
            stats.measured_delivered * 3 >= stats.measured_generated,
            "{}: only {}/{} delivered — the fabric stopped moving",
            kind.name(),
            stats.measured_delivered,
            stats.measured_generated
        );
    }
    // The same operating point under the deterministic policy wedges —
    // the contrast that shows escape VCs, not the refactor, buy the
    // liveness. (Pinned for RB2; the others behave alike.)
    let det = run_traffic(&net, RoutingKind::Rb2, &cfg.without_escape());
    assert!(det.deadlocked, "source-routed RB2 at 4% must interlock: {det:?}");
}

/// At the old interlock onset itself (2%), escape routing turns the
/// former deadlock into clean full delivery.
#[test]
fn old_interlock_onset_now_delivers_fully() {
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(2007);
    let faults = FaultSet::random(mesh, 26, FaultInjection::Uniform, &mut rng);
    let net = NetView::build(faults);
    let cfg =
        SimConfig { rate: 0.02, warmup: 150, measure: 500, drain: 1200, ..SimConfig::default() };
    for kind in [RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3] {
        let stats = run_traffic(&net, kind, &cfg);
        assert!(!stats.deadlocked, "{}: {stats:?}", kind.name());
        assert!(!stats.saturated, "{}: 2% is within capacity: {stats:?}", kind.name());
        assert_eq!(
            stats.measured_delivered,
            stats.measured_generated,
            "{} must deliver everything at 2%",
            kind.name()
        );
    }
}
