//! Integration tests of the wormhole traffic subsystem against the rest
//! of the workspace: the zero-load latency model agrees with the BFS
//! oracle, runs are seed-deterministic, and the paper's routing-quality
//! ordering survives the translation from hops to cycles.

use meshpath::prelude::*;
use meshpath::traffic::single_packet_latency;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// At zero load and zero faults every router delivers minimal paths, so
/// wormhole latency is exactly `oracle hops + PIPELINE_DEPTH + (L-1)`.
#[test]
fn zero_load_zero_fault_latency_equals_hops_plus_pipeline() {
    let mesh = Mesh::square(12);
    let net = NetView::build(FaultSet::none(mesh));
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let len = 4u32;
    for _ in 0..20 {
        let s = Coord::new(rng.gen_range(0..12), rng.gen_range(0..12));
        let d = Coord::new(rng.gen_range(0..12), rng.gen_range(0..12));
        if s == d {
            continue;
        }
        let oracle = DistanceField::healthy(net.faults(), d);
        let hops = u64::from(oracle.dist(s));
        for kind in RoutingKind::ALL {
            let lat = single_packet_latency(&net, kind, s, d, len)
                .unwrap_or_else(|| panic!("{} must deliver {s:?}->{d:?}", kind.name()));
            assert_eq!(
                lat,
                hops + PIPELINE_DEPTH + u64::from(len) - 1,
                "{} {s:?}->{d:?}",
                kind.name()
            );
        }
    }
}

/// Under faults, RB2's zero-load latency still tracks the oracle on
/// pairs where its route is shortest, and never beats it (the fabric
/// cannot deliver faster than the hop count).
#[test]
fn faulty_zero_load_latency_is_bounded_by_the_route() {
    let mesh = Mesh::square(12);
    let faults = FaultSet::from_coords(
        mesh,
        [Coord::new(5, 5), Coord::new(6, 5), Coord::new(5, 6), Coord::new(8, 3)],
    );
    let net = NetView::build(faults);
    let s = Coord::new(1, 1);
    let d = Coord::new(10, 10);
    let oracle = DistanceField::healthy(net.faults(), d);
    let opt = u64::from(oracle.dist(s));
    for kind in [RoutingKind::ECube, RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3] {
        let lat = single_packet_latency(&net, kind, s, d, 1).expect("delivered");
        assert!(
            lat >= opt + PIPELINE_DEPTH,
            "{}: latency {lat} beats the oracle {opt}",
            kind.name()
        );
    }
    // RB2 is the paper's shortest-path routing: tight on this pair.
    let rb2 = single_packet_latency(&net, RoutingKind::Rb2, s, d, 1).expect("delivered");
    assert_eq!(rb2, opt + PIPELINE_DEPTH);
}

/// Same seed => bit-identical statistics; different seed => different
/// workload.
#[test]
fn seeded_runs_are_reproducible() {
    let mesh = Mesh::square(10);
    let mut rng = StdRng::seed_from_u64(3);
    let faults = FaultSet::random(mesh, 6, FaultInjection::Uniform, &mut rng);
    let net = NetView::build(faults);
    let cfg =
        SimConfig { rate: 0.02, warmup: 100, measure: 500, drain: 1500, ..SimConfig::default() };
    for kind in [RoutingKind::ECube, RoutingKind::Rb2] {
        let a = run_traffic(&net, kind, &cfg);
        let b = run_traffic(&net, kind, &cfg);
        assert_eq!(a, b, "{} must be deterministic", kind.name());
        let c = run_traffic(&net, kind, &SimConfig { seed: 99, ..cfg.clone() });
        assert_ne!(
            (a.generated, a.latency.count()),
            (c.generated, c.latency.count()),
            "{}: different seeds should differ",
            kind.name()
        );
    }
}

/// The acceptance ordering: at low load under faults, RB2's mean
/// latency does not exceed fault-tolerant E-cube's.
///
/// The comparison must be *paired*: with the default route TTL, E-cube
/// sheds exactly its worst pairs at the NI, which biases its mean
/// downward. Disabling the TTL makes both routers carry the identical
/// generated workload.
#[test]
fn rb2_not_slower_than_ecube_at_low_load_under_faults() {
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(21);
    let faults = FaultSet::random(mesh, 12, FaultInjection::Uniform, &mut rng);
    let net = NetView::build(faults);
    let cfg = SimConfig {
        rate: 0.002,
        warmup: 200,
        measure: 1000,
        drain: 6000,
        route_ttl: Some(u32::MAX),
        ..SimConfig::default()
    };
    let rb2 = run_traffic(&net, RoutingKind::Rb2, &cfg);
    let ecube = run_traffic(&net, RoutingKind::ECube, &cfg);
    assert!(!rb2.saturated && !rb2.deadlocked, "RB2 must be healthy at low load");
    assert!(!ecube.saturated && !ecube.deadlocked, "E-cube must be healthy at low load");
    assert_eq!(rb2.measured_generated, ecube.measured_generated, "paired workload");
    assert!(rb2.latency.count() > 0 && ecube.latency.count() > 0);
    assert!(
        rb2.mean_latency() <= ecube.mean_latency() + 1e-9,
        "RB2 {} vs E-cube {}",
        rb2.mean_latency(),
        ecube.mean_latency()
    );
}

/// Paired zero-load comparison over explicit pairs: RB2 (shortest-path
/// routing) is on average no slower than E-cube on the identical pair
/// set, fault configuration by fault configuration.
#[test]
fn rb2_not_slower_than_ecube_zero_load_paired() {
    for seed in [1u64, 2, 3] {
        let mesh = Mesh::square(16);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultSet::random(mesh, 16, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        let (mut sum_rb2, mut sum_ecube, mut n) = (0u64, 0u64, 0u32);
        for _ in 0..200 {
            let s = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
            let d = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
            if s == d || !net.faults().is_healthy(s) || !net.faults().is_healthy(d) {
                continue;
            }
            let (Some(a), Some(b)) = (
                single_packet_latency(&net, RoutingKind::Rb2, s, d, 1),
                single_packet_latency(&net, RoutingKind::ECube, s, d, 1),
            ) else {
                continue;
            };
            sum_rb2 += a;
            sum_ecube += b;
            n += 1;
        }
        assert!(n > 100, "seed {seed}: too few routable pairs ({n})");
        assert!(
            sum_rb2 <= sum_ecube,
            "seed {seed}: RB2 total {sum_rb2} vs E-cube {sum_ecube} over {n} pairs"
        );
    }
}

/// The facade exposes the traffic subsystem through the prelude.
#[test]
fn facade_prelude_covers_traffic() {
    let net = NetView::build(FaultSet::none(Mesh::square(6)));
    let stats = run_traffic(
        &net,
        RoutingKind::Xy,
        &SimConfig { rate: 0.01, pattern: TrafficPattern::Transpose, ..SimConfig::smoke() },
    );
    let _: &TrafficStats = &stats;
    assert_eq!(stats.measured_delivered, stats.measured_generated);
    assert!(!stats.deadlocked);
}

/// Mid-run fault churn: epochs advance, deliveries are attributed per
/// epoch, nothing deadlocks, and the result is bit-identical at every
/// shard count (the snapshot-keyed `PathTable` keeps old-epoch routes
/// replayable while new admissions compile against the new epoch).
#[test]
fn fault_churn_runs_deadlock_free_and_shards_deterministically() {
    let mesh = Mesh::square(10);
    let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(2, 7)]));
    let cfg = SimConfig {
        rate: 0.02,
        ..SimConfig::smoke().with_fault_churn(vec![
            ChurnEvent::fail(150, Coord::new(5, 5)),
            ChurnEvent::fail(280, Coord::new(7, 2)),
            ChurnEvent::repair(400, Coord::new(5, 5)),
        ])
    };
    let stats = run_traffic(&net, RoutingKind::Rb2, &cfg);
    assert!(!stats.deadlocked, "churn must not interlock the fabric");
    assert!(!stats.saturated, "low load must drain across epochs");
    assert_eq!(stats.epoch_delivered.len(), 4, "one bucket per epoch");
    // Generation spans every epoch boundary, so each epoch delivers.
    for (e, &n) in stats.epoch_delivered.iter().enumerate() {
        assert!(n > 0, "epoch {e} delivered nothing: {:?}", stats.epoch_delivered);
    }
    // Every measured packet is accounted for: delivered, or discarded
    // by the decommissioned node's NI (a clean, non-saturated churn run
    // has no third outcome).
    assert!(
        stats.measured_generated - stats.measured_delivered <= stats.churn_dropped,
        "undelivered measured packets must be churn drops: {stats:?}"
    );
    // Bit-identical under sharding, churn included.
    for threads in [2usize, 3] {
        let sharded = run_traffic(&net, RoutingKind::Rb2, &cfg.clone().with_threads(threads));
        assert_eq!(stats, sharded, "churn run diverged at {threads} threads");
    }
    // And the run itself is reproducible.
    assert_eq!(stats, run_traffic(&net, RoutingKind::Rb2, &cfg));
}

/// Regression: a `PathTable` reused across runs (the rate-sweep
/// pattern) must reset to its initial snapshot before resolving a new
/// churn schedule — the previous run advanced the shared table's epoch
/// cursor, and resolving churn from that stale epoch double-applied
/// the events (panic: "already faulty") or mixed two networks in one
/// run.
#[test]
fn path_table_reuse_across_churn_runs_resolves_from_epoch_zero() {
    use meshpath::traffic::{run_traffic_reusing, PathTable};
    let net = NetView::build(FaultSet::none(Mesh::square(8)));
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let churn_cfg = SimConfig::smoke()
        .with_rate(0.02)
        .with_fault_churn(vec![ChurnEvent::fail(60, Coord::new(4, 4))]);
    let a = run_traffic_reusing(&mut paths, &churn_cfg);
    let b = run_traffic_reusing(&mut paths, &churn_cfg);
    assert_eq!(a, b, "reusing the table must not re-resolve churn from a stale epoch");
    // And an empty-churn run after a churn run must not inherit the
    // stale schedule (escape substrate, epoch-0 view).
    let plain_cfg = SimConfig::smoke().with_rate(0.02);
    let plain_reused = run_traffic_reusing(&mut paths, &plain_cfg);
    let plain_fresh = run_traffic(&net, RoutingKind::Rb2, &plain_cfg);
    assert_eq!(plain_reused, plain_fresh, "stale schedules must be cleared");
}
