//! Cross-crate integration tests: the full pipeline from fault injection
//! through labeling, information models, routing and the experiment
//! harness.

use meshpath::analysis::{run_sweep, Fig5Data, SweepConfig};
use meshpath::fault::distributed::run_distributed;
use meshpath::fault::{BorderPolicy, Labeling};
use meshpath::info::ModelKind;
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_net(mesh: Mesh, faults: usize, seed: u64) -> NetView {
    let mut rng = StdRng::seed_from_u64(seed);
    NetView::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng))
}

#[test]
fn full_pipeline_on_one_configuration() {
    let mesh = Mesh::square(24);
    let net = random_net(mesh, 40, 11);

    // Labeling is consistent between orientations: faults are faulty in
    // all frames; unsafe counts may differ (quadrant-relative).
    for o in Orientation::ALL {
        let lab = net.mccs(o).labeling();
        for c in net.faults().iter() {
            assert!(lab.status_real(c).is_unsafe());
        }
        assert!(lab.unsafe_count() >= net.faults().count());
    }

    // Information models grow monotonically in carrier counts.
    for o in Orientation::ALL {
        let b1 = net.model(o, ModelKind::B1).stats().involved_nodes;
        let b2 = net.model(o, ModelKind::B2).stats().involved_nodes;
        let b3 = net.model(o, ModelKind::B3).stats().involved_nodes;
        assert!(b1 <= b3, "B1 ({b1}) must not exceed B3 ({b3})");
        assert!(b3 <= b2, "B3 ({b3}) must not exceed B2 ({b2})");
    }

    // Every router delivers on every reachable safe pair we can sample.
    let mut rng = StdRng::seed_from_u64(5);
    let routers: [&dyn Router; 4] = [&ECube, &Rb1::default(), &Rb2::default(), &Rb3::default()];
    let mut pairs = 0;
    while pairs < 12 {
        let s = Coord::new(rng.gen_range(0..24), rng.gen_range(0..24));
        let d = Coord::new(rng.gen_range(0..24), rng.gen_range(0..24));
        let o = Orientation::normalizing(s, d);
        let lab = net.mccs(o).labeling();
        if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
            continue;
        }
        let oracle = DistanceField::healthy(net.faults(), d);
        if !oracle.reachable(s) {
            continue;
        }
        pairs += 1;
        for router in routers {
            let res = router.route(&net, s, d);
            assert!(res.delivered, "{} failed {s:?}->{d:?}", router.name());
            validate_path(&net, s, d, &res).expect("valid walk");
            assert!(res.hops() >= oracle.dist(s), "no router may beat BFS");
        }
    }
}

#[test]
fn distributed_labeling_feeds_the_same_models() {
    let mesh = Mesh::square(20);
    let mut rng = StdRng::seed_from_u64(21);
    let faults = FaultSet::random(mesh, 30, FaultInjection::Uniform, &mut rng);
    for o in Orientation::ALL {
        let global = Labeling::compute(&faults, o, BorderPolicy::Open);
        let dist = run_distributed(&faults, o, BorderPolicy::Open);
        assert!(dist.agrees_with(&global), "distributed labeling diverged under {o:?}");
    }
}

#[test]
fn b2_knowledge_covers_blocked_sources() {
    // Whenever a safe source is Manhattan-blocked toward a safe
    // destination, B2 must have stored at least one triple at the source
    // (that is the whole point of the broadcast).
    let mesh = Mesh::square(20);
    for seed in 0..6u64 {
        let net = random_net(mesh, 30, 100 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = Coord::new(rng.gen_range(0..20), rng.gen_range(0..20));
            let d = Coord::new(rng.gen_range(0..20), rng.gen_range(0..20));
            let o = Orientation::normalizing(s, d);
            let set = net.mccs(o);
            let lab = set.labeling();
            if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
                continue;
            }
            let (os, od) = (o.apply(&mesh, s), o.apply(&mesh, d));
            let blocked = !meshpath::route::monotone::monotone_feasible(os, od, |c| {
                lab.status(c).is_unsafe()
            });
            if blocked {
                let model = net.model(o, ModelKind::B2);
                assert!(
                    !model.known_at(os).is_empty(),
                    "blocked source {s:?} (seed {seed}) holds no B2 triple"
                );
            }
        }
    }
}

#[test]
fn sweep_smoke_produces_consistent_figures() {
    let cfg = SweepConfig {
        mesh: 24,
        fault_counts: vec![0, 40, 80],
        configs_per_point: 2,
        pairs_per_config: 10,
        threads: 2,
        ..Default::default()
    };
    let res = run_sweep(&cfg);
    let figs = Fig5Data::from_sweep(&res);
    // Disabled area grows with the fault count.
    let rows: Vec<f64> = figs
        .a
        .to_csv()
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
        .collect();
    assert!(rows.windows(2).all(|w| w[0] <= w[1] + 1e-9), "disabled% must not shrink: {rows:?}");
    // RB2 shortest-path success stays at/near 100%.
    for line in figs.d.to_csv().lines().skip(1) {
        let rb2: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
        assert!(rb2 >= 90.0, "RB2 success dropped: {line}");
    }
}

#[test]
fn repairing_all_faults_restores_manhattan_routing() {
    let mesh = Mesh::square(16);
    let mut faults = FaultSet::from_coords(mesh, [Coord::new(8, 8), Coord::new(7, 8)]);
    for c in [Coord::new(8, 8), Coord::new(7, 8)] {
        assert!(faults.repair(c));
    }
    let net = NetView::build(faults);
    let (s, d) = (Coord::new(1, 1), Coord::new(14, 12));
    let res = Rb2::default().route(&net, s, d);
    assert_eq!(res.hops(), s.manhattan(d));
    assert_eq!(res.replans, 0);
    assert_eq!(res.fallbacks, 0);
}
