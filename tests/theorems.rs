//! Randomized checks of the paper's two theorems (and the reproduction's
//! measured refinements of them).
//!
//! * **Theorem 1**: RB2 finds a path whenever one exists, and no path is
//!   shorter. Holds exactly in our implementation under global knowledge;
//!   under the materialized B2 broadcast it holds in > 99% of pairs (the
//!   gap is local-knowledge replanning, reported in EXPERIMENTS.md).
//! * **Theorem 2**: from a boundary node, RB3's path is no longer than
//!   RB2's (checked on sampled boundary sources).

use meshpath::info::ModelKind;
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_pairs(net: &NetView, n: i32, count: usize, rng: &mut StdRng) -> Vec<(Coord, Coord, u32)> {
    let mut out = Vec::new();
    let mut attempts = 0;
    while out.len() < count && attempts < 20_000 {
        attempts += 1;
        let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
        let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
        let o = Orientation::normalizing(s, d);
        let lab = net.mccs(o).labeling();
        if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
            continue;
        }
        let oracle = DistanceField::healthy(net.faults(), d);
        if !oracle.reachable(s) {
            continue;
        }
        out.push((s, d, oracle.dist(s)));
    }
    out
}

#[test]
fn theorem1_rb2_global_is_exactly_optimal() {
    let n = 20;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for trial in 0..10 {
        let faults = FaultSet::random(mesh, 15 + trial * 8, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        let rb2 = Rb2 { scope: KnowledgeScope::Global, ..Default::default() };
        for (s, d, opt) in sample_pairs(&net, n, 20, &mut rng) {
            let res = rb2.route(&net, s, d);
            assert!(res.delivered, "RB2 must deliver {s:?}->{d:?} (trial {trial})");
            validate_path(&net, s, d, &res).expect("valid walk");
            assert_eq!(res.hops(), opt, "RB2(global) not optimal for {s:?}->{d:?} (trial {trial})");
        }
    }
}

#[test]
fn theorem1_rb2_local_is_near_optimal() {
    let n = 24;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let mut total = 0u32;
    let mut optimal = 0u32;
    for trial in 0..10 {
        let faults = FaultSet::random(mesh, 20 + trial * 10, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        for (s, d, opt) in sample_pairs(&net, n, 20, &mut rng) {
            let res = Rb2::default().route(&net, s, d);
            assert!(res.delivered, "RB2 must deliver {s:?}->{d:?} (trial {trial})");
            total += 1;
            if res.hops() == opt {
                optimal += 1;
            }
        }
    }
    assert!(total >= 150, "sampling failed: {total}");
    let pct = 100.0 * f64::from(optimal) / f64::from(total);
    assert!(pct >= 98.0, "local RB2 success {pct:.1}% below the reproduction floor");
}

#[test]
fn theorem2_rb3_matches_rb2_from_boundary_sources() {
    let n = 20;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(0x7E02);
    let mut checked = 0u32;
    let mut as_good = 0u32;
    for trial in 0..12 {
        let faults = FaultSet::random(mesh, 15 + trial * 6, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        // Boundary sources: nodes that hold at least one B3 triple.
        for (s, d, _opt) in sample_pairs(&net, n, 30, &mut rng) {
            let o = Orientation::normalizing(s, d);
            let os = o.apply(&mesh, s);
            if net.model(o, ModelKind::B3).known_at(os).is_empty() {
                continue;
            }
            checked += 1;
            let rb2 = Rb2::default().route(&net, s, d);
            let rb3 = Rb3::default().route(&net, s, d);
            assert!(rb2.delivered && rb3.delivered, "trial {trial} {s:?}->{d:?}");
            if rb3.hops() <= rb2.hops() {
                as_good += 1;
            }
            // Never catastrophically worse: the detour machinery bounds
            // the damage even when relation chains mislead.
            assert!(
                rb3.hops() <= rb2.hops() + 2 * n as u32,
                "RB3 ({}) runaway vs RB2 ({}) from {s:?} (trial {trial})",
                rb3.hops(),
                rb2.hops()
            );
        }
    }
    assert!(checked >= 40, "too few boundary sources sampled: {checked}");
    // Theorem 2 in measured form: from boundary sources RB3 matches RB2
    // in the vast majority of cases (the deficit is B3's lack of interior
    // broadcast, quantified in EXPERIMENTS.md).
    let pct = 100.0 * f64::from(as_good) / f64::from(checked);
    assert!(pct >= 85.0, "RB3 matched RB2 in only {pct:.1}% of boundary cases");
}

#[test]
fn routers_never_beat_bfs() {
    let n = 18;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for trial in 0..6 {
        let faults = FaultSet::random(mesh, 10 + trial * 10, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        let routers: [&dyn Router; 4] = [&ECube, &Rb1::default(), &Rb2::default(), &Rb3::default()];
        for (s, d, opt) in sample_pairs(&net, n, 10, &mut rng) {
            for router in routers {
                let res = router.route(&net, s, d);
                if res.delivered {
                    assert!(res.hops() >= opt, "{} beat BFS?! {s:?}->{d:?}", router.name());
                    assert_eq!(
                        (res.hops() - opt) % 2,
                        0,
                        "{}: path-length parity must match the optimum",
                        router.name()
                    );
                }
            }
        }
    }
}

#[test]
fn success_ordering_matches_the_paper() {
    // Fig. 5(d): RB2 >= RB3 >= RB1 in shortest-path success (allowing
    // small-sample noise of a few pairs).
    let n = 24;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(0x0D0E);
    let mut hits = [0u32; 3]; // rb1, rb2, rb3
    let mut total = 0u32;
    for trial in 0..8 {
        let faults = FaultSet::random(mesh, 30 + trial * 12, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        for (s, d, opt) in sample_pairs(&net, n, 20, &mut rng) {
            total += 1;
            for (i, res) in [
                Rb1::default().route(&net, s, d),
                Rb2::default().route(&net, s, d),
                Rb3::default().route(&net, s, d),
            ]
            .iter()
            .enumerate()
            {
                if res.delivered && res.hops() == opt {
                    hits[i] += 1;
                }
            }
        }
    }
    assert!(total >= 120);
    assert!(hits[1] + 4 >= hits[2], "RB2 ({}) must not trail RB3 ({})", hits[1], hits[2]);
    assert!(hits[2] + 8 >= hits[0], "RB3 ({}) must not trail RB1 ({})", hits[2], hits[0]);
}
