//! Deterministic edge-case battery: degenerate geometries that the
//! randomized suites only hit occasionally.

use meshpath::prelude::*;

fn net(side: u32, faults: &[(i32, i32)]) -> NetView {
    let mesh = Mesh::square(side);
    NetView::build(FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y))))
}

fn all_routers() -> [Box<dyn Router>; 4] {
    [Box::new(ECube), Box::new(Rb1::default()), Box::new(Rb2::default()), Box::new(Rb3::default())]
}

#[test]
fn adjacent_endpoints() {
    let n = net(8, &[(4, 4)]);
    for router in all_routers() {
        let res = router.route(&n, Coord::new(2, 2), Coord::new(2, 3));
        assert!(res.delivered);
        assert_eq!(res.hops(), 1, "{}", router.name());
    }
}

#[test]
fn source_equals_destination() {
    let n = net(8, &[]);
    for router in all_routers() {
        let res = router.route(&n, Coord::new(3, 3), Coord::new(3, 3));
        assert!(res.delivered);
        assert_eq!(res.hops(), 0, "{}", router.name());
    }
}

#[test]
fn due_east_with_row_blocker() {
    // d due east, a fault on the row: the type-II machinery must detour
    // exactly two extra hops.
    let n = net(10, &[(5, 4)]);
    let (s, d) = (Coord::new(1, 4), Coord::new(8, 4));
    let res = Rb2::default().route(&n, s, d);
    assert!(res.delivered);
    assert_eq!(res.hops(), s.manhattan(d) + 2);
}

#[test]
fn due_north_with_column_blocker() {
    let n = net(10, &[(4, 5)]);
    let (s, d) = (Coord::new(4, 1), Coord::new(4, 8));
    let res = Rb2::default().route(&n, s, d);
    assert!(res.delivered);
    assert_eq!(res.hops(), s.manhattan(d) + 2);
}

#[test]
fn corner_to_corner_with_center_block() {
    // A 3x3 block dead center: corner-to-corner traffic stays Manhattan
    // (it can hug either side).
    let faults: Vec<(i32, i32)> = (5..8).flat_map(|x| (5..8).map(move |y| (x, y))).collect();
    let n = net(13, &faults);
    let (s, d) = (Coord::new(0, 0), Coord::new(12, 12));
    for router in all_routers() {
        let res = router.route(&n, s, d);
        assert!(res.delivered, "{}", router.name());
        validate_path(&n, s, d, &res).expect("valid");
    }
    let res = Rb2::default().route(&n, s, d);
    assert_eq!(res.hops(), s.manhattan(d));
}

#[test]
fn wall_with_single_gap() {
    // A full wall except one gap: every router must thread the gap.
    let faults: Vec<(i32, i32)> = (0..12).filter(|&x| x != 7).map(|x| (x, 6)).collect();
    let n = net(12, &faults);
    let (s, d) = (Coord::new(2, 1), Coord::new(2, 10));
    let oracle = DistanceField::healthy(n.faults(), d);
    for router in all_routers() {
        let res = router.route(&n, s, d);
        assert!(res.delivered, "{}", router.name());
        validate_path(&n, s, d, &res).expect("valid");
        assert!(res.path.contains(&Coord::new(7, 6)), "{} must use the gap", router.name());
    }
    let res = Rb2::default().route(&n, s, d);
    assert_eq!(res.hops(), oracle.dist(s), "RB2 threads the gap optimally");
}

#[test]
fn destination_in_a_pocket() {
    // d is reachable only from the east; naive monotone approaches from
    // the west must be re-planned around.
    let n = net(14, &[(8, 0), (9, 1), (10, 1), (11, 1)]);
    let (s, d) = (Coord::new(0, 0), Coord::new(10, 0));
    let oracle = DistanceField::healthy(n.faults(), d);
    assert!(oracle.reachable(s));
    let res = Rb2::default().route(&n, s, d);
    assert!(res.delivered);
    assert_eq!(res.hops(), oracle.dist(s));
}

#[test]
fn mcc_touching_every_border() {
    // Border-hugging clusters: corners off-mesh on all four sides.
    let n = net(10, &[(0, 5), (5, 0), (9, 4), (4, 9), (0, 0), (9, 9)]);
    let (s, d) = (Coord::new(2, 2), Coord::new(7, 7));
    for router in all_routers() {
        let res = router.route(&n, s, d);
        assert!(res.delivered, "{}", router.name());
        validate_path(&n, s, d, &res).expect("valid");
    }
}

#[test]
fn dense_diagonal_stripe() {
    // A dense anti-diagonal stripe with one opening forces long detours
    // but never traps anyone.
    let faults: Vec<(i32, i32)> = (0..14).filter(|&i| i != 9).map(|i| (i, 13 - i)).collect();
    let n = net(14, &faults);
    let (s, d) = (Coord::new(1, 1), Coord::new(12, 12));
    let oracle = DistanceField::healthy(n.faults(), d);
    assert!(oracle.reachable(s));
    for router in all_routers() {
        let res = router.route(&n, s, d);
        assert!(res.delivered, "{}", router.name());
    }
    let res = Rb2::default().route(&n, s, d);
    assert_eq!(res.hops(), oracle.dist(s));
}

#[test]
fn one_by_n_mesh_is_a_line() {
    // Degenerate topology: a 1-wide mesh routes along the line or fails
    // honestly when a fault cuts it.
    let mesh = Mesh::new(1, 10);
    let clear = NetView::build(FaultSet::none(mesh));
    let res = Rb2::default().route(&clear, Coord::new(0, 0), Coord::new(0, 9));
    assert!(res.delivered);
    assert_eq!(res.hops(), 9);

    let cut = NetView::build(FaultSet::from_coords(mesh, [Coord::new(0, 5)]));
    let res = Rb2::default().route(&cut, Coord::new(0, 0), Coord::new(0, 4));
    assert!(res.delivered);
    let res = Rb2::default().route(&cut, Coord::new(0, 0), Coord::new(0, 9));
    assert!(!res.delivered, "severed line must report non-delivery");
}

#[test]
fn two_by_two_mesh() {
    let mesh = Mesh::square(2);
    let n = NetView::build(FaultSet::none(mesh));
    for router in all_routers() {
        let res = router.route(&n, Coord::new(0, 0), Coord::new(1, 1));
        assert!(res.delivered, "{}", router.name());
        assert_eq!(res.hops(), 2);
    }
}

#[test]
fn all_quadrant_directions_are_symmetric() {
    // The same geometry rotated into each quadrant gives the same path
    // length (orientation machinery at work).
    let n = net(11, &[(5, 5)]);
    let center = Coord::new(5, 1);
    let opposite = Coord::new(5, 9);
    let up = Rb2::default().route(&n, center, opposite);
    let down = Rb2::default().route(&n, opposite, center);
    assert!(up.delivered && down.delivered);
    assert_eq!(up.hops(), down.hops(), "routing must be direction-symmetric here");

    let west = Coord::new(1, 5);
    let east = Coord::new(9, 5);
    let we = Rb2::default().route(&n, west, east);
    let ew = Rb2::default().route(&n, east, west);
    assert_eq!(we.hops(), ew.hops());
    assert_eq!(we.hops(), up.hops(), "X and Y blockers are symmetric");
}
