//! RCU publication correctness for `RouteService` under concurrency:
//!
//! * the repeated-spawn stress test races query threads against a
//!   churn thread and checks, for **every** reply, that its epoch is
//!   one the writer actually published and that the reply is
//!   bit-identical to re-routing on a `NetState` rebuilt at that
//!   epoch's fault set (readers may lag the writer, but can never see
//!   a torn or unpublished snapshot);
//! * the proptest pins `route_many` ≡ per-query `route`, in order,
//!   for arbitrary meshes, fault sets and query batches.

use std::collections::HashMap;
use std::sync::Mutex;

use meshpath::prelude::*;
use proptest::prelude::*;

/// Queries raced against churn must answer at published epochs, with
/// replies identical to a fresh rebuild of that epoch's network.
///
/// The writer logs `epoch -> fault set` as it publishes; query threads
/// record `(query, reply)` observations. After the race, every
/// observation is replayed against a `NetState` reconstructed from the
/// log. Repeated across several service spawns so thread-local
/// snapshot caches from earlier services (same OS threads, fresh
/// service ids) cannot leak between runs.
#[test]
fn raced_replies_match_their_published_epoch() {
    let side = 10i32;
    let churn_sites = [Coord::new(2, 3), Coord::new(7, 6), Coord::new(4, 8)];
    for spawn in 0..3 {
        let mesh = Mesh::square(side as u32);
        let base = Coord::new(spawn + 3, 5);
        let service = RouteService::new(FaultSet::from_coords(mesh, [base]));

        // Writer-side publication log: epoch -> full fault list.
        let log: Mutex<HashMap<u64, Vec<Coord>>> = Mutex::new(HashMap::from([(0, vec![base])]));

        let observations: Vec<(Coord, Coord, Result<RouteReply, RouteError>)> =
            std::thread::scope(|scope| {
                let queriers: Vec<_> = (0..3)
                    .map(|t| {
                        let service = &service;
                        scope.spawn(move || {
                            let mut seen = Vec::new();
                            for i in 0i32..400 {
                                let s = Coord::new((i * 7 + t) % side, (i * 3) % side);
                                let d = Coord::new((i * 5 + 9) % side, (i * 11 + t) % side);
                                if s == d {
                                    continue;
                                }
                                seen.push((s, d, service.route(s, d)));
                            }
                            seen
                        })
                    })
                    .collect();
                let churn = scope.spawn(|| {
                    for round in 0..30 {
                        let c = churn_sites[round % churn_sites.len()];
                        let epoch = service.add_fault(c).expect("healthy site");
                        log.lock().unwrap().insert(epoch, vec![base, c]);
                        let epoch = service.remove_fault(c).expect("fault just added");
                        log.lock().unwrap().insert(epoch, vec![base]);
                    }
                });
                churn.join().expect("churn thread");
                queriers.into_iter().flat_map(|h| h.join().expect("query thread")).collect()
            });

        // Replay every observation against its epoch's reconstruction.
        let log = log.into_inner().unwrap();
        let rebuilt: HashMap<u64, RouteService> = log
            .iter()
            .map(|(&epoch, coords)| {
                let faults =
                    FaultSet::from_coords(Mesh::square(side as u32), coords.iter().copied());
                (epoch, RouteService::new(faults))
            })
            .collect();
        assert!(observations.len() > 1000, "the race must actually query");
        for (s, d, reply) in observations {
            let epoch = match &reply {
                Ok(r) => r.epoch,
                // Validation errors carry no epoch; every fault set in
                // this test has the same mesh, and only fault-dependent
                // errors need an epoch to be checked against.
                Err(RouteError::OffMesh(_)) => continue,
                Err(_) => {
                    // The pair must be invalid at *some* published
                    // epoch (source/destination hit a churn site).
                    assert!(
                        log.values().any(|coords| coords.contains(&s) || coords.contains(&d)),
                        "{s:?}->{d:?} errored but no published epoch faults an endpoint"
                    );
                    continue;
                }
            };
            let fresh = rebuilt
                .get(&epoch)
                .unwrap_or_else(|| panic!("reply epoch {epoch} was never published"))
                .route(s, d);
            match (&reply, &fresh) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.result, b.result, "{s:?}->{d:?} diverges at epoch {epoch}")
                }
                (a, b) => panic!("{s:?}->{d:?} at epoch {epoch}: raced {a:?} vs fresh {b:?}"),
            }
        }
    }
}

/// A generated proptest case: mesh side, fault coordinates, and a
/// query batch of raw `(x, y)` endpoint pairs.
type BatchInstance = (u32, Vec<(i32, i32)>, Vec<((i32, i32), (i32, i32))>);

/// Strategy: a mesh side, fault coordinates, and a query batch.
fn batch_instance() -> impl Strategy<Value = BatchInstance> {
    (6u32..16).prop_flat_map(|side| {
        let coord = (0..side as i32, 0..side as i32);
        let faults = proptest::collection::hash_set(coord, 0..((side * side / 6) as usize).max(1));
        // Endpoints straddle the mesh boundary on purpose: validation
        // errors must round-trip through route_many too.
        let end = (-1..side as i32 + 1, -1..side as i32 + 1);
        let pairs = proptest::collection::vec((end.clone(), end), 0..40);
        (Just(side), faults.prop_map(|s| s.into_iter().collect()), pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `route_many` answers exactly what per-query `route` answers, in
    /// the order of the input pairs.
    #[test]
    fn route_many_equals_per_query_route((side, faults, pairs) in batch_instance()) {
        let mesh = Mesh::square(side);
        let faults = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        let service = RouteService::new(faults);
        let pairs: Vec<(Coord, Coord)> = pairs
            .iter()
            .map(|&((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
            .collect();
        let batch = service.route_many(&pairs);
        prop_assert_eq!(batch.len(), pairs.len());
        for (&(s, d), reply) in pairs.iter().zip(&batch) {
            let single = service.route(s, d);
            match (reply, single) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.epoch, b.epoch);
                    prop_assert_eq!(&a.result, &b.result);
                }
                (Err(a), Err(b)) => prop_assert_eq!(*a, b),
                (a, b) => prop_assert!(false, "{:?}->{:?}: batch {:?} vs single {:?}", s, d, a, b),
            }
        }
    }
}
